//! Compact binary trace serialization.
//!
//! Records traces to a simple length-delimited binary format so expensive
//! generator runs (or externally gathered traces) can be replayed exactly.
//! Each record is 21 bytes — PC (8), address (8), gap (4), and a flag
//! byte packing the access kind and dependence bit — preceded by a
//! 16-byte file header: magic (4), version (4), record count (8). The
//! `on_disk_layout_matches_docs` unit test pins these numbers so the
//! prose cannot drift from `RECORD_BYTES` and `HEADER_BYTES` again.
//!
//! Two decoders share the format. [`read_trace_per_record`] walks a
//! cursor field by field — the original, obviously-correct reference.
//! [`TraceBatch::decode`] decodes block-wise into a struct-of-arrays
//! batch (`chunks_exact` over whole records, `from_be_bytes` per field),
//! which the public [`read_trace`] and the streaming [`BatchReader`]
//! build on; it is several times faster and asserted record-for-record
//! identical to the reference by `tests/decode_parity.rs`.

use std::io::{self, Read, Seek, SeekFrom, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::{Replay, TraceSource};

/// File magic: "LTCT" (LT-cords trace).
const MAGIC: u32 = 0x4c54_4354;
/// Format version.
const VERSION: u32 = 1;
/// Bytes per serialized record: PC (8) + address (8) + gap (4) + flags (1).
const RECORD_BYTES: usize = 21;
/// File header bytes: magic (4) + version (4) + record count (8).
const HEADER_BYTES: usize = 16;

/// Serializes accesses from `source` into `writer`, up to `limit` records.
/// Returns the number of records written.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
///
/// # Example
///
/// ```
/// use ltc_trace::io::{write_trace, read_trace};
/// use ltc_trace::{Replay, MemoryAccess, Pc, Addr, TraceSource};
///
/// # fn main() -> std::io::Result<()> {
/// let trace = vec![MemoryAccess::load(Pc(1), Addr(64))];
/// let mut buf = Vec::new();
/// write_trace(&mut Replay::once(trace.clone()), &mut buf, 100)?;
/// let mut replay = read_trace(&mut buf.as_slice())?;
/// assert_eq!(replay.next_access(), Some(trace[0]));
/// # Ok(())
/// # }
/// ```
pub fn write_trace<S, W>(source: &mut S, mut writer: W, limit: u64) -> io::Result<u64>
where
    S: TraceSource + ?Sized,
    W: Write,
{
    let mut header = BytesMut::with_capacity(HEADER_BYTES);
    header.put_u32(MAGIC);
    header.put_u32(VERSION);
    header.put_u64(0); // record count, unknown for streaming writes
    writer.write_all(&header)?;

    let mut written = 0u64;
    let mut buf = BytesMut::with_capacity(RECORD_BYTES * 1024);
    for _ in 0..limit {
        let Some(a) = source.next_access() else { break };
        buf.put_u64(a.pc.0);
        buf.put_u64(a.addr.0);
        buf.put_u32(a.gap);
        let mut flags = 0u8;
        if !a.kind.is_load() {
            flags |= 1;
        }
        if a.dependent {
            flags |= 2;
        }
        buf.put_u8(flags);
        written += 1;
        if buf.len() >= RECORD_BYTES * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(written)
}

/// Validates a 16-byte header slice (magic + version; the count field is
/// a placeholder for streaming writes and is ignored).
fn check_header(header: &[u8]) -> io::Result<()> {
    debug_assert_eq!(header.len(), HEADER_BYTES);
    let magic = u32::from_be_bytes(header[0..4].try_into().unwrap());
    let version = u32::from_be_bytes(header[4..8].try_into().unwrap());
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an LT-cords trace file"));
    }
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    Ok(())
}

/// A struct-of-arrays batch of decoded records.
///
/// The decode hot path fills four parallel flat vectors instead of a
/// `Vec<MemoryAccess>`: each field decodes with one `from_be_bytes` from
/// a fixed offset inside a 21-byte `chunks_exact` window, which the
/// compiler turns into straight-line loads — no per-field cursor
/// bookkeeping. Records reassemble on demand via [`TraceBatch::get`] or
/// the [`BatchCursor`] source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBatch {
    /// Program counters, one per record.
    pub pc: Vec<u64>,
    /// Accessed addresses, parallel to `pc`.
    pub addr: Vec<u64>,
    /// Instruction gaps, parallel to `pc`.
    pub gap: Vec<u32>,
    /// Raw flag bytes (bit 0 store, bit 1 dependent), parallel to `pc`.
    pub flags: Vec<u8>,
}

impl TraceBatch {
    /// An empty batch with room for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        TraceBatch {
            pc: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            gap: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
        }
    }

    /// Decodes a record payload (no header; length must be a whole
    /// number of records) block-wise into a batch.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when `payload` ends mid-record.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        if payload.len() % RECORD_BYTES != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
        }
        let mut batch = TraceBatch::with_capacity(payload.len() / RECORD_BYTES);
        for rec in payload.chunks_exact(RECORD_BYTES) {
            batch.pc.push(u64::from_be_bytes(rec[0..8].try_into().unwrap()));
            batch.addr.push(u64::from_be_bytes(rec[8..16].try_into().unwrap()));
            batch.gap.push(u32::from_be_bytes(rec[16..20].try_into().unwrap()));
            batch.flags.push(rec[20]);
        }
        Ok(batch)
    }

    /// Records in the batch.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Reassembles record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> MemoryAccess {
        let flags = self.flags[i];
        MemoryAccess {
            pc: Pc(self.pc[i]),
            addr: Addr(self.addr[i]),
            kind: if flags & 1 != 0 { AccessKind::Store } else { AccessKind::Load },
            gap: self.gap[i],
            dependent: flags & 2 != 0,
        }
    }

    /// Appends one record.
    pub fn push(&mut self, a: &MemoryAccess) {
        self.pc.push(a.pc.0);
        self.addr.push(a.addr.0);
        self.gap.push(a.gap);
        let mut flags = 0u8;
        if !a.kind.is_load() {
            flags |= 1;
        }
        if a.dependent {
            flags |= 2;
        }
        self.flags.push(flags);
    }

    /// Iterates the records in order.
    pub fn iter(&self) -> impl Iterator<Item = MemoryAccess> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Materializes the batch as a `Vec<MemoryAccess>`.
    pub fn to_accesses(&self) -> Vec<MemoryAccess> {
        self.iter().collect()
    }

    /// Consumes the batch into a cursor [`TraceSource`] that reassembles
    /// records lazily (no intermediate `Vec<MemoryAccess>`).
    pub fn into_source(self) -> BatchCursor {
        BatchCursor { batch: self, pos: 0 }
    }

    /// Resident bytes of the four field arrays (allocated capacity, not
    /// just length) plus the struct itself — the honest footprint the
    /// size-accounting tests audit.
    pub fn memory_bytes(&self) -> u64 {
        (self.pc.capacity() * std::mem::size_of::<u64>()
            + self.addr.capacity() * std::mem::size_of::<u64>()
            + self.gap.capacity() * std::mem::size_of::<u32>()
            + self.flags.capacity() * std::mem::size_of::<u8>()
            + std::mem::size_of::<Self>()) as u64
    }
}

/// A [`TraceSource`] replaying an owned [`TraceBatch`] once.
///
/// Produced by [`TraceBatch::into_source`].
#[derive(Debug, Clone)]
pub struct BatchCursor {
    batch: TraceBatch,
    pos: usize,
}

impl TraceSource for BatchCursor {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.pos >= self.batch.len() {
            return None;
        }
        let a = self.batch.get(self.pos);
        self.pos += 1;
        Some(a)
    }
}

/// Reads a complete serialized trace into a [`Replay`] source, decoding
/// block-wise (same `chunks_exact` scheme as [`TraceBatch::decode`], but
/// assembling each [`MemoryAccess`] in the single pass over the payload
/// — no intermediate struct-of-arrays detour).
///
/// # Errors
///
/// Returns `InvalidData` when the magic or version does not match or the
/// payload is truncated mid-record, and any underlying I/O error.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Replay> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() < HEADER_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace header"));
    }
    check_header(&raw[..HEADER_BYTES])?;
    let payload = &raw[HEADER_BYTES..];
    if payload.len() % RECORD_BYTES != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
    }
    // `ChunksExact` knows its length, so `collect` sizes the vector once
    // and skips the per-record capacity check a `push` loop would pay.
    let accesses: Vec<MemoryAccess> = payload
        .chunks_exact(RECORD_BYTES)
        .map(|rec| {
            let flags = rec[20];
            MemoryAccess {
                pc: Pc(u64::from_be_bytes(rec[0..8].try_into().unwrap())),
                addr: Addr(u64::from_be_bytes(rec[8..16].try_into().unwrap())),
                kind: if flags & 1 != 0 { AccessKind::Store } else { AccessKind::Load },
                gap: u32::from_be_bytes(rec[16..20].try_into().unwrap()),
                dependent: flags & 2 != 0,
            }
        })
        .collect();
    Ok(Replay::once(accesses))
}

/// Reads a complete serialized trace into one [`TraceBatch`].
///
/// # Errors
///
/// Same conditions as [`read_trace`].
pub fn read_trace_batch<R: Read>(mut reader: R) -> io::Result<TraceBatch> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() < HEADER_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace header"));
    }
    check_header(&raw[..HEADER_BYTES])?;
    TraceBatch::decode(&raw[HEADER_BYTES..])
}

/// The original per-record cursor decoder, kept as the oracle the
/// batched path is property-tested against (`tests/decode_parity.rs`).
/// Prefer [`read_trace`]/[`read_trace_batch`] everywhere else.
///
/// # Errors
///
/// Same conditions as [`read_trace`].
pub fn read_trace_per_record<R: Read>(mut reader: R) -> io::Result<Replay> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut bytes = Bytes::from(raw);
    if bytes.remaining() < HEADER_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace header"));
    }
    let magic = bytes.get_u32();
    let version = bytes.get_u32();
    let _count = bytes.get_u64();
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an LT-cords trace file"));
    }
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    if bytes.remaining() % RECORD_BYTES != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
    }
    let mut accesses = Vec::with_capacity(bytes.remaining() / RECORD_BYTES);
    while bytes.remaining() >= RECORD_BYTES {
        let pc = Pc(bytes.get_u64());
        let addr = Addr(bytes.get_u64());
        let gap = bytes.get_u32();
        let flags = bytes.get_u8();
        accesses.push(MemoryAccess {
            pc,
            addr,
            kind: if flags & 1 != 0 { AccessKind::Store } else { AccessKind::Load },
            gap,
            dependent: flags & 2 != 0,
        });
    }
    Ok(Replay::once(accesses))
}

/// Records decoded per [`BatchReader`] refill.
const READER_CHUNK_RECORDS: usize = 4096;

/// A streaming trace decoder: validates the header up front, then
/// decodes fixed-size (4096-record) [`TraceBatch`]es on demand,
/// so arbitrarily long trace files replay in bounded memory.
///
/// Use [`BatchReader::next_batch`] for batch-at-a-time processing, or
/// drive it as a [`TraceSource`] directly (e.g. `ltsim replay`). The
/// `TraceSource` face cannot surface mid-stream I/O errors through
/// `next_access`'s `Option`, so it ends the stream and parks the error
/// in [`BatchReader::error`] — drivers should check it after a replay.
#[derive(Debug)]
pub struct BatchReader<R> {
    reader: R,
    current: TraceBatch,
    pos: usize,
    error: Option<io::Error>,
    done: bool,
    /// A short refill ended mid-record: every *whole* record has been
    /// returned already and the next [`BatchReader::next_batch`] call
    /// must surface the truncation as an error.
    truncated: bool,
}

impl<R: Read> BatchReader<R> {
    /// Opens a trace stream, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad or truncated header, and any
    /// underlying I/O error.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut header = [0u8; HEADER_BYTES];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(io::ErrorKind::InvalidData, "truncated trace header")
            } else {
                e
            }
        })?;
        check_header(&header)?;
        Ok(BatchReader {
            reader,
            current: TraceBatch::default(),
            pos: 0,
            error: None,
            done: false,
            truncated: false,
        })
    }

    /// Decodes the next batch, or `None` at a clean end of stream.
    ///
    /// A stream that ends mid-record still yields every *whole* record
    /// first; the truncation error surfaces on the following call, so
    /// no valid prefix is lost to a corrupt tail.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the stream ends mid-record, and any
    /// underlying I/O error.
    pub fn next_batch(&mut self) -> io::Result<Option<TraceBatch>> {
        if self.truncated {
            self.truncated = false;
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trace ends mid-record"));
        }
        if self.done {
            return Ok(None);
        }
        let mut buf = vec![0u8; READER_CHUNK_RECORDS * RECORD_BYTES];
        let mut filled = 0;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..])? {
                0 => break,
                n => filled += n,
            }
        }
        if filled < buf.len() {
            self.done = true;
        }
        if filled == 0 {
            return Ok(None);
        }
        // A short final refill may end mid-record: decode the
        // whole-record prefix now, report the truncation next call.
        let whole = filled - filled % RECORD_BYTES;
        if whole == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trace ends mid-record"));
        }
        if whole < filled {
            self.truncated = true;
        }
        TraceBatch::decode(&buf[..whole]).map(Some)
    }

    /// The I/O error that ended `TraceSource` iteration early, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<R: Read + Seek> BatchReader<R> {
    /// Positions the stream so the next access decoded is record `n`
    /// (0-based) — an O(1) file seek on the fixed 21-byte record format,
    /// the recorded-trace counterpart of generator checkpointing.
    ///
    /// A target at or past the end of the recording clamps to the end
    /// (the next read then reports a clean end of stream, mirroring what
    /// skipping forward record by record would have produced). Returns
    /// the record position actually landed on, and clears any parked
    /// [`BatchReader::error`] along with buffered batch state.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error from seeking.
    pub fn seek_record(&mut self, n: u64) -> io::Result<u64> {
        let end = self.reader.seek(SeekFrom::End(0))?;
        let payload = end.saturating_sub(HEADER_BYTES as u64);
        // Floor division: a trailing partial record is not addressable
        // (decoding it reports the same mid-record error a sequential
        // read would hit).
        let total = payload / RECORD_BYTES as u64;
        let target = n.min(total);
        self.reader.seek(SeekFrom::Start(HEADER_BYTES as u64 + target * RECORD_BYTES as u64))?;
        self.current = TraceBatch::default();
        self.pos = 0;
        self.error = None;
        self.done = false;
        self.truncated = false;
        Ok(target)
    }
}

impl<R: Read> TraceSource for BatchReader<R> {
    fn next_access(&mut self) -> Option<MemoryAccess> {
        if self.pos >= self.current.len() {
            match self.next_batch() {
                Ok(Some(batch)) => {
                    self.current = batch;
                    self.pos = 0;
                }
                Ok(None) => return None,
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return None;
                }
            }
        }
        let a = self.current.get(self.pos);
        self.pos += 1;
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn round_trips_generated_trace() {
        let mut src = suite::by_name("gcc").unwrap().build(3);
        let original = src.collect_accesses(5_000);
        let mut buf = Vec::new();
        let n = write_trace(&mut Replay::once(original.clone()), &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 5_000);
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        let restored = replay.collect_accesses(10_000);
        assert_eq!(restored, original);
    }

    #[test]
    fn limit_truncates_writing() {
        let mut src = suite::by_name("gzip").unwrap().build(1);
        let mut buf = Vec::new();
        let n = write_trace(&mut src, &mut buf, 100).unwrap();
        assert_eq!(n, 100);
        assert_eq!(buf.len(), HEADER_BYTES + 100 * RECORD_BYTES);
    }

    /// Pins the exact on-disk layout the module docs describe: a 16-byte
    /// header (magic, version, count) followed by 21-byte records
    /// (PC 8 + address 8 + gap 4 + flags 1).
    #[test]
    fn on_disk_layout_matches_docs() {
        assert_eq!(HEADER_BYTES, 16);
        assert_eq!(RECORD_BYTES, 21);
        assert_eq!(RECORD_BYTES, 8 + 8 + 4 + 1);

        let access = MemoryAccess::store(Pc(0x1122_3344_5566_7788), Addr(0x99aa_bbcc_ddee_ff00))
            .with_dependent(true)
            .with_gap(0x0a0b_0c0d);
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(vec![access]), &mut buf, 10).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + RECORD_BYTES, "one record, one header");

        // Header: magic, version, count placeholder — all big-endian.
        assert_eq!(&buf[0..4], &MAGIC.to_be_bytes());
        assert_eq!(&buf[4..8], &VERSION.to_be_bytes());
        assert_eq!(&buf[8..16], &0u64.to_be_bytes());
        // Record: PC, address, gap, flags (bit 0 store, bit 1 dependent).
        assert_eq!(&buf[16..24], &access.pc.0.to_be_bytes());
        assert_eq!(&buf[24..32], &access.addr.0.to_be_bytes());
        assert_eq!(&buf[32..36], &access.gap.to_be_bytes());
        assert_eq!(buf[36], 0b11);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = vec![0u8; 32];
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_trace_per_record(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(BatchReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_record() {
        let mut src = suite::by_name("gzip").unwrap().build(1);
        let mut buf = Vec::new();
        write_trace(&mut src, &mut buf, 10).unwrap();
        buf.pop(); // corrupt the tail
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_trace_per_record(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut reader = BatchReader::new(buf.as_slice()).unwrap();
        // The batch reader first yields the 9 whole records, then reports
        // the truncation on the following call.
        let batch = reader.next_batch().unwrap().expect("whole-record prefix decodes");
        assert_eq!(batch.len(), 9);
        let err = reader.next_batch().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(vec![]), &mut buf, 10).unwrap();
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        assert!(replay.next_access().is_none());
        let mut reader = BatchReader::new(buf.as_slice()).unwrap();
        assert!(reader.next_batch().unwrap().is_none());
        assert!(reader.next_access().is_none());
    }

    #[test]
    fn flags_preserve_kind_and_dependence() {
        let trace = vec![
            MemoryAccess::store(Pc(1), Addr(0)).with_dependent(true),
            MemoryAccess::load(Pc(2), Addr(64)),
        ];
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(trace.clone()), &mut buf, 10).unwrap();
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.collect_accesses(10), trace);
    }

    #[test]
    fn batch_push_get_round_trips() {
        let trace = vec![
            MemoryAccess::store(Pc(1), Addr(0)).with_dependent(true).with_gap(7),
            MemoryAccess::load(Pc(2), Addr(64)),
        ];
        let mut batch = TraceBatch::default();
        for a in &trace {
            batch.push(a);
        }
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.to_accesses(), trace);
        let mut cursor = batch.into_source();
        assert_eq!(cursor.collect_accesses(10), trace);
    }

    #[test]
    fn streaming_reader_spans_chunk_boundaries() {
        // More records than one READER_CHUNK_RECORDS refill, so the
        // source face must stitch batches seamlessly.
        let mut src = suite::by_name("gcc").unwrap().build(7);
        let n = READER_CHUNK_RECORDS + 123;
        let original = src.collect_accesses(n);
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(original.clone()), &mut buf, u64::MAX).unwrap();
        let mut reader = BatchReader::new(buf.as_slice()).unwrap();
        let restored = reader.collect_accesses(2 * n);
        assert_eq!(restored, original);
        assert!(reader.error().is_none());
    }

    /// A numbered recording (`pc == record index`) for seek tests.
    fn numbered_trace(n: u64) -> Vec<u8> {
        let accesses: Vec<MemoryAccess> =
            (0..n).map(|i| MemoryAccess::load(Pc(i), Addr(i * 64))).collect();
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(accesses), &mut buf, u64::MAX).unwrap();
        buf
    }

    #[test]
    fn seek_record_lands_exactly_forward_and_backward() {
        let buf = numbered_trace(500);
        let mut reader = BatchReader::new(io::Cursor::new(&buf)).unwrap();
        assert_eq!(reader.seek_record(321).unwrap(), 321);
        assert_eq!(reader.next_access().unwrap().pc, Pc(321));
        // Backward, after buffered state exists.
        assert_eq!(reader.seek_record(7).unwrap(), 7);
        assert_eq!(reader.next_access().unwrap().pc, Pc(7));
        // Seek to 0 replays from the very first record.
        assert_eq!(reader.seek_record(0).unwrap(), 0);
        assert_eq!(reader.next_access().unwrap().pc, Pc(0));
    }

    #[test]
    fn seek_record_past_eof_clamps_to_a_clean_end() {
        let buf = numbered_trace(100);
        let mut reader = BatchReader::new(io::Cursor::new(&buf)).unwrap();
        assert_eq!(reader.seek_record(100).unwrap(), 100, "end itself is addressable");
        assert!(reader.next_access().is_none());
        assert!(reader.error().is_none(), "past-EOF is a clean end, not an error");
        assert_eq!(reader.seek_record(u64::MAX).unwrap(), 100);
        assert!(reader.next_batch().unwrap().is_none());
        // The reader is still usable after the clamped seek.
        assert_eq!(reader.seek_record(99).unwrap(), 99);
        assert_eq!(reader.next_access().unwrap().pc, Pc(99));
    }

    #[test]
    fn seek_record_into_final_partial_chunk() {
        // A recording whose tail chunk is partial: seeking into it must
        // decode exactly the remaining records, no more, no fewer.
        let n = READER_CHUNK_RECORDS as u64 + 123;
        let buf = numbered_trace(n);
        let mut reader = BatchReader::new(io::Cursor::new(&buf)).unwrap();
        let target = READER_CHUNK_RECORDS as u64 + 100;
        assert_eq!(reader.seek_record(target).unwrap(), target);
        let tail = reader.collect_accesses(1000);
        assert_eq!(tail.len() as u64, n - target);
        assert_eq!(tail.first().unwrap().pc, Pc(target));
        assert_eq!(tail.last().unwrap().pc, Pc(n - 1));
        assert!(reader.error().is_none());
    }

    #[test]
    fn seek_record_ignores_a_trailing_partial_record() {
        let mut buf = numbered_trace(10);
        buf.pop(); // corrupt the tail: record 9 is now partial
        let mut reader = BatchReader::new(io::Cursor::new(&buf)).unwrap();
        // Only 9 whole records are addressable.
        assert_eq!(reader.seek_record(u64::MAX).unwrap(), 9);
        assert_eq!(reader.seek_record(8).unwrap(), 8);
        assert_eq!(reader.next_access().unwrap().pc, Pc(8));
        // Reading on hits the same mid-record error a sequential read
        // reports, parked on the source face.
        assert!(reader.next_access().is_none());
        assert!(reader.error().is_some());
    }

    #[test]
    fn seek_record_resets_a_parked_error() {
        let mut buf = numbered_trace(10);
        buf.pop();
        let mut reader = BatchReader::new(io::Cursor::new(&buf)).unwrap();
        while reader.next_access().is_some() {}
        assert!(reader.error().is_some());
        assert_eq!(reader.seek_record(0).unwrap(), 0);
        assert!(reader.error().is_none());
        assert_eq!(reader.collect_accesses(100).len(), 9);
    }

    #[test]
    fn batch_memory_bytes_tracks_capacity() {
        let batch = TraceBatch::with_capacity(100);
        // 8 + 8 + 4 + 1 = 21 bytes per record of capacity, plus the
        // struct header.
        assert_eq!(batch.memory_bytes(), (100 * 21 + std::mem::size_of::<TraceBatch>()) as u64);
    }
}
