//! Compact binary trace serialization.
//!
//! Records traces to a simple length-delimited binary format so expensive
//! generator runs (or externally gathered traces) can be replayed exactly.
//! Each record is 21 bytes — PC (8), address (8), gap (4), and a flag
//! byte packing the access kind and dependence bit — preceded by a
//! 16-byte file header: magic (4), version (4), record count (8). The
//! `on_disk_layout_matches_docs` unit test pins these numbers so the
//! prose cannot drift from `RECORD_BYTES` and `HEADER_BYTES` again.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{AccessKind, Addr, MemoryAccess, Pc};
use crate::source::{Replay, TraceSource};

/// File magic: "LTCT" (LT-cords trace).
const MAGIC: u32 = 0x4c54_4354;
/// Format version.
const VERSION: u32 = 1;
/// Bytes per serialized record: PC (8) + address (8) + gap (4) + flags (1).
const RECORD_BYTES: usize = 21;
/// File header bytes: magic (4) + version (4) + record count (8).
const HEADER_BYTES: usize = 16;

/// Serializes accesses from `source` into `writer`, up to `limit` records.
/// Returns the number of records written.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
///
/// # Example
///
/// ```
/// use ltc_trace::io::{write_trace, read_trace};
/// use ltc_trace::{Replay, MemoryAccess, Pc, Addr, TraceSource};
///
/// # fn main() -> std::io::Result<()> {
/// let trace = vec![MemoryAccess::load(Pc(1), Addr(64))];
/// let mut buf = Vec::new();
/// write_trace(&mut Replay::once(trace.clone()), &mut buf, 100)?;
/// let mut replay = read_trace(&mut buf.as_slice())?;
/// assert_eq!(replay.next_access(), Some(trace[0]));
/// # Ok(())
/// # }
/// ```
pub fn write_trace<S, W>(source: &mut S, mut writer: W, limit: u64) -> io::Result<u64>
where
    S: TraceSource + ?Sized,
    W: Write,
{
    let mut header = BytesMut::with_capacity(HEADER_BYTES);
    header.put_u32(MAGIC);
    header.put_u32(VERSION);
    header.put_u64(0); // record count, unknown for streaming writes
    writer.write_all(&header)?;

    let mut written = 0u64;
    let mut buf = BytesMut::with_capacity(RECORD_BYTES * 1024);
    for _ in 0..limit {
        let Some(a) = source.next_access() else { break };
        buf.put_u64(a.pc.0);
        buf.put_u64(a.addr.0);
        buf.put_u32(a.gap);
        let mut flags = 0u8;
        if !a.kind.is_load() {
            flags |= 1;
        }
        if a.dependent {
            flags |= 2;
        }
        buf.put_u8(flags);
        written += 1;
        if buf.len() >= RECORD_BYTES * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(written)
}

/// Reads a complete serialized trace into a [`Replay`] source.
///
/// # Errors
///
/// Returns `InvalidData` when the magic or version does not match or the
/// payload is truncated mid-record, and any underlying I/O error.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Replay> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut bytes = Bytes::from(raw);
    if bytes.remaining() < HEADER_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace header"));
    }
    let magic = bytes.get_u32();
    let version = bytes.get_u32();
    let _count = bytes.get_u64();
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an LT-cords trace file"));
    }
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    if bytes.remaining() % RECORD_BYTES != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated trace record"));
    }
    let mut accesses = Vec::with_capacity(bytes.remaining() / RECORD_BYTES);
    while bytes.remaining() >= RECORD_BYTES {
        let pc = Pc(bytes.get_u64());
        let addr = Addr(bytes.get_u64());
        let gap = bytes.get_u32();
        let flags = bytes.get_u8();
        accesses.push(MemoryAccess {
            pc,
            addr,
            kind: if flags & 1 != 0 { AccessKind::Store } else { AccessKind::Load },
            gap,
            dependent: flags & 2 != 0,
        });
    }
    Ok(Replay::once(accesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn round_trips_generated_trace() {
        let mut src = suite::by_name("gcc").unwrap().build(3);
        let original = src.collect_accesses(5_000);
        let mut buf = Vec::new();
        let n = write_trace(&mut Replay::once(original.clone()), &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 5_000);
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        let restored = replay.collect_accesses(10_000);
        assert_eq!(restored, original);
    }

    #[test]
    fn limit_truncates_writing() {
        let mut src = suite::by_name("gzip").unwrap().build(1);
        let mut buf = Vec::new();
        let n = write_trace(&mut src, &mut buf, 100).unwrap();
        assert_eq!(n, 100);
        assert_eq!(buf.len(), HEADER_BYTES + 100 * RECORD_BYTES);
    }

    /// Pins the exact on-disk layout the module docs describe: a 16-byte
    /// header (magic, version, count) followed by 21-byte records
    /// (PC 8 + address 8 + gap 4 + flags 1).
    #[test]
    fn on_disk_layout_matches_docs() {
        assert_eq!(HEADER_BYTES, 16);
        assert_eq!(RECORD_BYTES, 21);
        assert_eq!(RECORD_BYTES, 8 + 8 + 4 + 1);

        let access = MemoryAccess::store(Pc(0x1122_3344_5566_7788), Addr(0x99aa_bbcc_ddee_ff00))
            .with_dependent(true)
            .with_gap(0x0a0b_0c0d);
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(vec![access]), &mut buf, 10).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + RECORD_BYTES, "one record, one header");

        // Header: magic, version, count placeholder — all big-endian.
        assert_eq!(&buf[0..4], &MAGIC.to_be_bytes());
        assert_eq!(&buf[4..8], &VERSION.to_be_bytes());
        assert_eq!(&buf[8..16], &0u64.to_be_bytes());
        // Record: PC, address, gap, flags (bit 0 store, bit 1 dependent).
        assert_eq!(&buf[16..24], &access.pc.0.to_be_bytes());
        assert_eq!(&buf[24..32], &access.addr.0.to_be_bytes());
        assert_eq!(&buf[32..36], &access.gap.to_be_bytes());
        assert_eq!(buf[36], 0b11);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = vec![0u8; 32];
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_record() {
        let mut src = suite::by_name("gzip").unwrap().build(1);
        let mut buf = Vec::new();
        write_trace(&mut src, &mut buf, 10).unwrap();
        buf.pop(); // corrupt the tail
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(vec![]), &mut buf, 10).unwrap();
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        assert!(replay.next_access().is_none());
    }

    #[test]
    fn flags_preserve_kind_and_dependence() {
        let trace = vec![
            MemoryAccess::store(Pc(1), Addr(0)).with_dependent(true),
            MemoryAccess::load(Pc(2), Addr(64)),
        ];
        let mut buf = Vec::new();
        write_trace(&mut Replay::once(trace.clone()), &mut buf, 10).unwrap();
        let mut replay = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.collect_accesses(10), trace);
    }
}
