//! Splitting one logical trace into contiguous worker segments.
//!
//! Segmented streaming (`ltsim stream --segments N`) fans a single
//! trace's access budget out to parallel workers: worker `i` summarizes
//! only its contiguous slice of the stream and the partial summaries are
//! merged afterwards. A [`TraceSegment`] names one such slice by
//! half-open access range; [`TraceSegment::split`] produces the full
//! partition (even to within one access, covering the budget exactly,
//! in order).
//!
//! Reaching a slice no longer costs `O(start)` generator work per
//! worker: every built-in source supports the [`checkpoint`] protocol
//! ([`TraceSource::checkpoint`] / [`TraceSource::restore`]), so a worker
//! restores the nearest recorded snapshot at-or-before its slice and
//! generates only the residual — `O(K)` for checkpoint interval `K`
//! (plus the bounded warm-up window below). The restored stream is
//! element-identical to the skipped one, so reports do not depend on
//! which path placed the worker. The plain skip loop remains the
//! fallback whenever no snapshot is available — no checkpoint recorded
//! at-or-before the target, or a source that does not implement the
//! protocol (external/recorded sources wrapped by adapters that cannot
//! snapshot their inner state return `None` from `checkpoint`); it is
//! generation-only (no simulation), merely `O(start)` instead of `O(K)`.
//! [`TraceSegment::carve`] packages the skip-then-bound pattern for
//! plain consumers; consumers that keep simulator state place the
//! source themselves so they can replay a bounded warm-up window of the
//! prefix through their machinery first (`ltc_analysis`'s stream
//! analysis does exactly this) — see EXPERIMENTS.md "Segmented
//! streaming" and "Seek & checkpointing" for the approximation and the
//! seek protocol.
//!
//! [`checkpoint`]: crate::checkpoint

use crate::source::{TakeSource, TraceSource};

/// One contiguous slice of a trace's access budget.
///
/// # Example
///
/// ```
/// use ltc_trace::TraceSegment;
///
/// let segments = TraceSegment::split(10, 4);
/// assert_eq!(segments.len(), 4);
/// assert_eq!(segments[0], TraceSegment { index: 0, segments: 4, start: 0, len: 2 });
/// assert_eq!(segments[3], TraceSegment { index: 3, segments: 4, start: 7, len: 3 });
/// assert_eq!(segments.iter().map(|s| s.len).sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceSegment {
    /// This segment's position (0-based) in the partition.
    pub index: u32,
    /// Total segments in the partition.
    pub segments: u32,
    /// First access (0-based) of the slice.
    pub start: u64,
    /// Accesses in the slice.
    pub len: u64,
}

impl TraceSegment {
    /// The `index`-th of `segments` even slices of an `accesses` budget.
    ///
    /// Boundaries are `accesses * i / segments`, so slice lengths differ
    /// by at most one and the union covers `[0, accesses)` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero or `index >= segments`.
    pub fn nth(accesses: u64, segments: u32, index: u32) -> Self {
        assert!(segments > 0, "a trace splits into at least one segment");
        assert!(index < segments, "segment {index} out of {segments}");
        let start = accesses * u64::from(index) / u64::from(segments);
        let end = accesses * (u64::from(index) + 1) / u64::from(segments);
        TraceSegment { index, segments, start, len: end - start }
    }

    /// The full partition of an `accesses` budget, in order.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn split(accesses: u64, segments: u32) -> Vec<TraceSegment> {
        assert!(segments > 0, "a trace splits into at least one segment");
        (0..segments).map(|i| TraceSegment::nth(accesses, segments, i)).collect()
    }

    /// Exclusive end of the slice.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether this is the whole trace (the single-segment partition).
    pub fn is_whole(&self) -> bool {
        self.index == 0 && self.segments == 1
    }

    /// Advances `source` past the first `start` accesses and bounds it to
    /// the slice's `len`. A source that ends early simply yields fewer
    /// accesses — exactly as a bounded single-pass run would.
    pub fn carve<S: TraceSource>(&self, mut source: S) -> TakeSource<S> {
        for _ in 0..self.start {
            if source.next_access().is_none() {
                break;
            }
        }
        source.take_accesses(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Addr, MemoryAccess, Pc};
    use crate::source::Replay;

    fn numbered(n: u64) -> Vec<MemoryAccess> {
        (0..n).map(|i| MemoryAccess::load(Pc(i), Addr(i * 64))).collect()
    }

    #[test]
    fn split_partitions_exactly() {
        for (accesses, segments) in [(10u64, 3u32), (7, 7), (1, 1), (100, 8), (5, 8)] {
            let parts = TraceSegment::split(accesses, segments);
            assert_eq!(parts.len(), segments as usize);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end(), accesses);
            for pair in parts.windows(2) {
                assert_eq!(pair[0].end(), pair[1].start, "slices must be contiguous");
            }
            let (min, max) =
                parts.iter().fold((u64::MAX, 0), |(lo, hi), s| (lo.min(s.len), hi.max(s.len)));
            assert!(max - min <= 1, "slice lengths must differ by at most one");
        }
    }

    #[test]
    fn nth_matches_split() {
        for index in 0..5u32 {
            assert_eq!(
                TraceSegment::nth(123, 5, index),
                TraceSegment::split(123, 5)[index as usize]
            );
        }
    }

    #[test]
    fn carve_yields_the_exact_slice() {
        let trace = numbered(20);
        let mut seen = Vec::new();
        for seg in TraceSegment::split(20, 3) {
            let mut carved = seg.carve(Replay::once(trace.clone()));
            let slice = carved.collect_accesses(100);
            assert_eq!(slice.len() as u64, seg.len);
            assert_eq!(slice.first().unwrap().pc.0, seg.start);
            seen.extend(slice);
        }
        assert_eq!(seen, trace, "concatenated segments reproduce the stream");
    }

    #[test]
    fn carve_tolerates_short_sources() {
        let seg = TraceSegment::nth(100, 2, 1); // wants [50, 100)
        let mut carved = seg.carve(Replay::once(numbered(30)));
        assert!(carved.next_access().is_none(), "source exhausted during skip");
    }

    #[test]
    fn whole_trace_is_one_segment() {
        let seg = TraceSegment::nth(50, 1, 0);
        assert!(seg.is_whole());
        assert_eq!(seg, TraceSegment { index: 0, segments: 1, start: 0, len: 50 });
        assert!(!TraceSegment::nth(50, 2, 0).is_whole());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _ = TraceSegment::split(10, 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_index_rejected() {
        let _ = TraceSegment::nth(10, 2, 2);
    }
}
