//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`,
//! integer-range / `any::<T>()` / `Just` / tuple / `prop_map` /
//! `prop_oneof!` / `prop::collection::vec` strategies.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! 1. **Deterministic cases.** Each test derives its RNG seed from the
//!    test name and case index, so a failure reproduces exactly on every
//!    run and machine — no persistence file needed.
//! 2. **No shrinking.** A failing case reports its inputs via the
//!    assertion message and case number instead of searching for a
//!    minimal counterexample.
//!
//! Swap the path dependency for the real crate to regain shrinking; the
//! test sources compile unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases — smaller than real proptest's 256: several properties
    /// here drive whole cache-simulation runs per case.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property assertion (carried out of the test body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// RNG handed to strategies; deterministic per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a test-name hash and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | 0x5eed)))
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound.max(1))
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe adapter so heterogeneous strategies can share a `Vec`
/// (used by [`prop_oneof!`]).
pub trait StrategyObj<T> {
    /// Draws one value.
    fn sample_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniformly picks one of several strategies, then samples it.
pub struct OneOf<T> {
    options: Vec<Box<dyn StrategyObj<T>>>,
}

impl<T> OneOf<T> {
    /// Builds from the (non-empty) options list.
    pub fn new(options: Vec<Box<dyn StrategyObj<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample_obj(rng)
    }
}

/// Boxes a strategy for [`OneOf`]; lets [`prop_oneof!`] rely on
/// inference to unify the option types.
pub fn boxed_strategy<T, S>(strategy: S) -> Box<dyn StrategyObj<T>>
where
    S: StrategyObj<T> + 'static,
{
    Box::new(strategy)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in STRATEGY, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (
        @run($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e.0
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_are_reproducible() {
        let s = 0u64..1000;
        let a: Vec<u64> =
            (0..10).map(|c| s.sample(&mut crate::TestRng::for_case("t", c))).collect();
        let b: Vec<u64> =
            (0..10).map(|c| s.sample(&mut crate::TestRng::for_case("t", c))).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&v| v != a[0]), "cases must vary");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The shim's own smoke test: every strategy shape used by the
        /// workspace produces in-range values.
        #[test]
        fn strategies_stay_in_range(
            x in 10u64..20,
            flag in any::<bool>(),
            v in prop::collection::vec((0u32..4, any::<bool>()), 1..8),
            mapped in (0u64..8).prop_map(|n| n * 64),
            pick in prop_oneof![Just(1u8), Just(9u8)],
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
            prop_assert_eq!(mapped % 64, 0);
            prop_assert!(pick == 1 || pick == 9);
        }
    }
}
