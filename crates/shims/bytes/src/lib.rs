//! Offline stand-in for `bytes`.
//!
//! Provides the cursor subset the trace serializer uses: [`BytesMut`]
//! as a growable write buffer ([`BufMut`] big-endian puts, matching the
//! real crate's byte order), and [`Bytes`] as a consuming read cursor
//! ([`Buf`] gets + `remaining`). Backed by a plain `Vec<u8>` — none of
//! the real crate's zero-copy reference counting, which the workspace
//! doesn't rely on.

use std::ops::Deref;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

/// Write-side buffer operations (big-endian, like the real crate).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Owned read cursor over a byte payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Bytes {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let end = self.pos + N;
        assert!(end <= self.data.len(), "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take::<4>())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take::<8>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_is_big_endian() {
        let mut w = BytesMut::with_capacity(13);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_u8(0x7f);
        assert_eq!(w.len(), 13);
        assert_eq!(w[0], 0xde, "big-endian: most significant byte first");

        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_u8(), 0x7f);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut r = Bytes::from(vec![1, 2]);
        let _ = r.get_u32();
    }
}
