//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `Throughput`) on top of `std::time::Instant`. Each
//! benchmark runs one warm-up iteration plus `sample_size` timed
//! iterations and prints min/mean wall-clock time (and element
//! throughput when declared). No statistics, outlier rejection, or HTML
//! reports — swap the path dependency for the real crate to get those;
//! the bench sources compile unchanged.

use std::time::Instant;

/// Declared work-per-iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level bench driver; collects settings and runs benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far below real criterion's 100: these benches run whole
        // simulations per iteration and this shim does no statistics.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done by one iteration of each benchmark.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(&full, self.throughput, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{name:<40} min {:>10}  mean {:>10}{rate}", fmt_time(min), fmt_time(mean));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum_100", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.finish();
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs_without_panicking() {
        shim_group();
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 4 };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 4);
    }
}
