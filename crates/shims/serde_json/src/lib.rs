//! Offline functional stand-in for `serde_json`.
//!
//! Writes and parses standard JSON over the `serde` shim's [`Value`]
//! tree. Output is canonical: map entries keep insertion order, equal
//! values produce byte-identical strings, and everything fits on one
//! line (JSON-lines friendly — the experiment engine's `results/`
//! artifacts are one object per line).
//!
//! Deviations from the real crate, all irrelevant to the workspace's
//! artifacts: no pretty printer, non-finite floats serialize as `null`
//! (real serde_json errors), and numbers only distinguish
//! unsigned/signed/float (no arbitrary precision).

use std::fmt::Write as _;

pub use serde::DeError as Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes any [`Serialize`] type to its canonical [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes to a compact, canonical, single-line JSON string.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &v.to_value());
    out
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses a JSON string into a raw [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and is
                // valid JSON for finite values (always digits, ., e).
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via char_indices).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("lt-cords \"A\"\n".into())),
            ("count".into(), Value::U64(18446744073709551615)),
            ("delta".into(), Value::I64(-42)),
            ("ratio".into(), Value::F64(0.6875)),
            ("flags".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Map(vec![])),
        ]);
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn output_is_single_line_and_canonical() {
        let v = Value::Map(vec![("b".into(), Value::U64(1)), ("a".into(), Value::U64(2))]);
        let text = to_string(&v);
        assert_eq!(text, "{\"b\":1,\"a\":2}");
        assert!(!text.contains('\n'));
        // Canonical: serializing twice gives identical bytes.
        assert_eq!(text, to_string(&v));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , -2 , 3.5 , \"a\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_seq().unwrap(),
            &[Value::U64(1), Value::I64(-2), Value::F64(3.5), Value::Str("aA\n".into()),]
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u64> = from_str(&to_string(&vec![1u64, 2, 3])).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let f: f64 = from_str("2.5e3").unwrap();
        assert!((f - 2500.0).abs() < 1e-9);
    }
}
