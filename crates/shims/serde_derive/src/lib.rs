//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal stand-in: the derives accept the same syntax as the
//! real `serde_derive` (including `#[serde(...)]` field/container
//! attributes) and expand to nothing. Swapping the `serde` path
//! dependency for the real crate re-enables full (de)serialization
//! without touching any call site.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
