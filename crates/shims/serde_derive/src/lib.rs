//! Functional `#[derive(Serialize, Deserialize)]` macros.
//!
//! This build environment has no access to crates.io (so no `syn`/
//! `quote`); the derives are hand-rolled token walkers that support the
//! shapes the workspace persists:
//!
//! * structs with named fields — serialized as an ordered map,
//! * fieldless enums — serialized as the variant name string.
//!
//! Anything else (tuple structs, data-carrying enums, generics) gets a
//! `compile_error!` telling the author to hand-write the impl, which is
//! what `ltc_sim::engine` does for its tagged spec/result enums.
//! Swapping the `serde` path dependency for the real crate re-enables
//! full (de)serialization without touching any derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, ... }` (no payloads)
    Enum { name: String, variants: Vec<String> },
    /// Unsupported input; the string is the error message.
    Unsupported(String),
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens")
}

/// Skips attribute tokens (`#` followed by a bracket group) starting at
/// `i`; returns the first non-attribute index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Extracts field names from the brace group of a named-field struct.
///
/// Commas inside generic argument lists (`HashMap<K, V>`) are not group
/// boundaries in the token stream, so an angle-bracket depth counter
/// decides which commas separate fields.
fn named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        match tokens.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("field `{name}` is not `name: type` (tuple struct?)")),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma.
        i += 2;
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts variant names from the brace group of a fieldless enum.
fn unit_variants(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(name);
                i += 1;
            }
            Some(_) => {
                return Err(format!(
                    "variant `{name}` carries data; hand-write the serde impls for this enum"
                ))
            }
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Shape::Unsupported("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Shape::Unsupported("expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Shape::Unsupported(format!(
                "generic type `{name}` is unsupported; hand-write the serde impls"
            ));
        }
    }
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => {
            return Shape::Unsupported(format!(
                "`{name}` has no named-field body (tuple or unit types are unsupported)"
            ))
        }
    };
    let result = match kind.as_str() {
        "struct" => named_fields(group).map(|fields| Shape::Struct { name, fields }),
        "enum" => unit_variants(group).map(|variants| Shape::Enum { name, variants }),
        other => return Shape::Unsupported(format!("unsupported item kind `{other}`")),
    };
    result.unwrap_or_else(Shape::Unsupported)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => {v:?},")).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unsupported(msg) => return error(&format!("derive(Serialize): {msg}")),
    }
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::field(value, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("Some({v:?}) => Ok({name}::{v}),")).collect();
            let expected = variants.join(", ");
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             _ => Err(serde::DeError::expected({expected:?}, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unsupported(msg) => return error(&format!("derive(Deserialize): {msg}")),
    }
    .parse()
    .expect("generated Deserialize impl parses")
}
