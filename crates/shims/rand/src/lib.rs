//! Offline stand-in for `rand` 0.8.
//!
//! Unlike the `serde` shim this one is *functional*: the workload
//! generators need real (deterministic, well-mixed) pseudo-randomness.
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64, exposing
//! the exact subset of the rand 0.8 API the workspace uses:
//!
//! * `StdRng::seed_from_u64` ([`SeedableRng`])
//! * `gen_range` over `Range`/`RangeInclusive` of the common integer
//!   types, `gen_bool`, `gen::<f64>()` ([`Rng`])
//! * `shuffle`/`choose` on slices ([`seq::SliceRandom`])
//!
//! Streams are fully determined by the seed, which the simulator relies
//! on for reproducible experiments. The distributions match rand's
//! semantics (half-open / inclusive ranges, Bernoulli `gen_bool`), but
//! the *values* differ from the real crate — seeds are not portable
//! across the swap, only statistically equivalent.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` accepts: a range plus the sampling rule for it.
pub trait SampleRange<T> {
    /// Draws one value from the range using words from `next`.
    fn sample_single<F: FnMut() -> u64>(self, next: F) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<F: FnMut() -> u64>(self, mut next: F) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let v = ((u128::from(next()) * u128::from(span)) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<F: FnMut() -> u64>(self, mut next: F) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return next() as $t;
                }
                let v = ((u128::from(next()) * u128::from(span)) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<F: FnMut() -> u64>(self, mut next: F) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(next()) * (self.end - self.start)
    }
}

/// Maps a word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(|| self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform `f64` in `[0, 1)` (the only `Standard` sample used here).
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state (shim extension, not in
        /// real rand 0.8): enables exact snapshot/restore of a stream
        /// position for checkpointed trace seeking.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`Self::state`] snapshot (shim
        /// extension). The restored generator continues the stream at
        /// exactly the word the snapshot was taken at.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits}/10000 at p=0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never sorts");
    }
}
