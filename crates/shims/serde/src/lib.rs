//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize};` plus `#[derive(Serialize, Deserialize)]` compile
//! unchanged. The marker traits exist so generic bounds written against
//! `serde` keep compiling; nothing implements them (the derives expand
//! to nothing), which is fine because no code in this workspace
//! serializes yet — reports are rendered as fixed-width text tables.
//!
//! Replace the path dependency with the real `serde` when a registry is
//! available; no source change is required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
