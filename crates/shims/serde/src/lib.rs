//! Offline stand-in for `serde` — now functional, not a no-op.
//!
//! The real `serde` drives serialization through visitor-style
//! `Serializer`/`Deserializer` traits; reimplementing that machinery
//! offline is not worth it. Instead this shim models serialization as a
//! conversion to and from a self-describing [`Value`] tree (the same
//! model as `serde_json::Value`), which is exactly the capability the
//! workspace needs: the experiment engine persists result artifacts as
//! JSON through the sibling `serde_json` shim.
//!
//! `#[derive(Serialize, Deserialize)]` (from the `serde_derive` shim)
//! generates real field-by-field conversions for structs with named
//! fields and for fieldless enums. Swapping in the real crates restores
//! the visitor API without touching any derive site; only the handful of
//! hand-written `impl Serialize`/`impl Deserialize` blocks (see
//! `ltc_sim::engine::spec`) would need mechanical rewrites.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the `serde_json::Value` model).
///
/// Maps preserve insertion order so that serialized output is canonical:
/// equal values serialize to byte-identical JSON, which the experiment
/// engine relies on for content-addressed artifact keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (negative values only; non-negative use [`Value::U64`]).
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key/value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly enough for reports).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree (the shim's `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree (the shim's `serde::Deserialize`).
///
/// The lifetime parameter mirrors the real trait's signature so bounds
/// like `for<'de> Deserialize<'de>` written against real serde compile
/// unchanged.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserializes a named field out of a map value (derive-internal helper).
pub fn field<'de, T: Deserialize<'de>>(value: &Value, name: &str, ty: &str) -> Result<T, DeError> {
    let v = value.get(name).ok_or_else(|| DeError(format!("missing field `{name}` in {ty}")))?;
    T::from_value(v).map_err(|e| DeError(format!("{ty}.{name}: {}", e.0)))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = value.as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = match *value {
                    Value::I64(v) => v,
                    Value::U64(v) => {
                        i64::try_from(v).map_err(|_| DeError::expected("i64", stringify!($t)))?
                    }
                    _ => return Err(DeError::expected("signed integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().map(|v| v as f32).ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_seq().ok_or_else(|| DeError::expected("sequence", "Vec"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            v => T::from_value(v).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element sequence", "tuple")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
    }

    #[test]
    fn unsigned_rejects_negative() {
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Value::U64(9)), Ok(Some(9)));
        let pair = (2u64, 0.5f64);
        assert_eq!(<(u64, f64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn map_lookup_finds_fields() {
        let m = Value::Map(vec![("a".into(), Value::U64(1)), ("b".into(), Value::Bool(false))]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.get("c"), None);
        assert_eq!(field::<u64>(&m, "a", "T"), Ok(1));
        assert!(field::<u64>(&m, "missing", "T").is_err());
    }
}
