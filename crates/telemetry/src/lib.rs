//! Structured telemetry: spans, counters, gauges, and a JSON-lines
//! event stream.
//!
//! The simulator's runtime visibility used to be a stderr progress line
//! plus ad-hoc `eprintln!` warnings. This crate replaces that with one
//! structured event stream that every layer — scheduler, backends,
//! subprocess workers, the segment path, and the sketch layer — writes
//! into, and that pluggable [`Subscriber`]s consume: a JSON-lines file
//! writer ([`JsonLinesWriter`]), an in-memory [`Aggregator`], a test
//! [`Capture`], or the progress-rendering adapter in `ltc_sim`.
//!
//! # Design constraints
//!
//! * **Zero dependencies.** The crate sits at the bottom of the
//!   workspace graph so `ltc_stream` and `ltc_analysis` can emit from
//!   hot loops; it carries its own minimal JSON encoder rather than
//!   depending on the serde shims.
//! * **Cheap when off.** All emit helpers gate on [`enabled`] — a
//!   relaxed atomic load plus a thread-local check — so uninstrumented
//!   runs pay (sub-)nanoseconds per site. Hot loops should additionally
//!   capture `enabled()` once before entering (the stream path does).
//! * **Process-global hub.** Instrumentation sites (disk-store loaders,
//!   sketch observers) have no context object to thread a handle
//!   through, so subscribers [`install`] into a global hub, mirroring
//!   the checkpoint-store registry idiom. Tests use the thread-scoped
//!   [`with_subscriber`] instead, which never leaks across parallel
//!   test threads.
//!
//! # Event schema (v1)
//!
//! One JSON object per line:
//!
//! ```json
//! {"v":1,"t":1234,"kind":"span_begin","name":"spec","span":7,"worker":2,"fields":{"label":"coverage/gcc/..."}}
//! ```
//!
//! | key      | type   | meaning                                               |
//! |----------|--------|-------------------------------------------------------|
//! | `v`      | u64    | schema version ([`EVENT_SCHEMA`])                     |
//! | `t`      | u64    | microseconds since the process telemetry epoch        |
//! | `kind`   | string | `span_begin` `span_end` `counter` `gauge` `warning` `point` |
//! | `name`   | string | event name (the aggregation key)                      |
//! | `span`   | u64?   | span id — present on `span_begin`/`span_end`          |
//! | `worker` | u64?   | worker id — present when the emitting thread has one  |
//! | `fields` | object | typed payload (strings, integers, floats, bools)      |
//!
//! `span_end` always carries an `elapsed_us` field. `counter` events
//! carry a `value` field holding a **delta** (subscribers sum them);
//! `gauge` events carry a `value` field holding an instantaneous level
//! (subscribers keep the last or the peak).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema version stamped into every serialized event (`"v"`).
pub const EVENT_SCHEMA: u64 = 1;

/// Environment variable a parent process sets on `ltsim worker`
/// children to request telemetry frames over the worker protocol
/// (tagged `{"event":{...}}` stdout lines, see [`wire_line`]).
pub const WIRE_ENV: &str = "LTC_TELEMETRY_WIRE";

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A typed field value. The closed set keeps the encoder trivial and
/// the schema checkable.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized via Rust's shortest round-trip formatting).
    F64(f64),
    /// String (JSON-escaped on serialization).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            FieldValue::U64(v) => Some(v),
            FieldValue::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The six event kinds of schema v1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A span opened (paired with a later `SpanEnd` carrying the same
    /// span id).
    SpanBegin,
    /// A span closed; carries `elapsed_us`.
    SpanEnd,
    /// A monotonic counter **delta** (field `value`).
    Counter,
    /// An instantaneous level (field `value`).
    Gauge,
    /// Something degraded but the run continues.
    Warning,
    /// A discrete occurrence with no duration or magnitude.
    Point,
}

impl EventKind {
    /// The schema string (`"span_begin"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Warning => "warning",
            EventKind::Point => "point",
        }
    }

    /// Parses the schema string back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "warning" => EventKind::Warning,
            "point" => EventKind::Point,
            _ => return None,
        })
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process telemetry epoch.
    pub t_micros: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name — the aggregation key.
    pub name: String,
    /// Span id for `span_begin`/`span_end` pairs.
    pub span: Option<u64>,
    /// Worker id of the emitting thread/process, when assigned.
    pub worker: Option<u64>,
    /// Typed payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Builds an event stamped with the current time and the calling
    /// thread's worker id.
    pub fn now(kind: EventKind, name: &str) -> Event {
        Event {
            t_micros: now_micros(),
            kind,
            name: name.to_string(),
            span: None,
            worker: current_worker(),
            fields: Vec::new(),
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The `value` field of counter/gauge events, when numeric.
    pub fn value(&self) -> Option<u64> {
        match self.field("value") {
            Some(FieldValue::U64(v)) => Some(*v),
            Some(FieldValue::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Serializes the event as one schema-v1 JSON line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"v\":{EVENT_SCHEMA},\"t\":{},\"kind\":\"{}\",\"name\":",
            self.t_micros,
            self.kind.as_str()
        );
        escape_json_str(&self.name, &mut out);
        if let Some(span) = self.span {
            let _ = write!(out, ",\"span\":{span}");
        }
        if let Some(worker) = self.worker {
            let _ = write!(out, ",\"worker\":{worker}");
        }
        out.push_str(",\"fields\":{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json_str(name, &mut out);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => {
                    // Rust's shortest round-trip formatting emits plain
                    // JSON numbers (integral floats print without a
                    // dot, which is still a valid JSON number).
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(v) => escape_json_str(v, &mut out),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }
}

/// Wraps an event as a worker-protocol frame: a stdout line the parent
/// distinguishes from `RunResult` lines by its single `"event"` key.
pub fn wire_line(event: &Event) -> String {
    format!("{{\"event\":{}}}", event.to_json_line())
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Subscribers and the hub
// ---------------------------------------------------------------------------

/// A telemetry consumer. Implementations must tolerate concurrent
/// `event` calls from many threads.
pub trait Subscriber: Send + Sync {
    /// Receives one event.
    fn event(&self, event: &Event);
    /// Flushes any buffered output (called by [`flush`]).
    fn flush(&self) {}
}

struct Hub {
    subscribers: Mutex<Vec<(u64, Arc<dyn Subscriber>)>>,
    /// Mirror of `!subscribers.is_empty()` for the lock-free fast path.
    any_global: AtomicBool,
    next_token: AtomicU64,
    next_span: AtomicU64,
    epoch: Instant,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        subscribers: Mutex::new(Vec::new()),
        any_global: AtomicBool::new(false),
        next_token: AtomicU64::new(1),
        next_span: AtomicU64::new(1),
        epoch: Instant::now(),
    })
}

thread_local! {
    static LOCAL_SUBSCRIBER: std::cell::RefCell<Vec<Arc<dyn Subscriber>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    static WORKER_ID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Token returned by [`install`]; pass to [`uninstall`] to remove the
/// subscriber again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberToken(u64);

/// Installs a process-global subscriber. Returns a token for
/// [`uninstall`].
pub fn install(subscriber: Arc<dyn Subscriber>) -> SubscriberToken {
    let hub = hub();
    let token = hub.next_token.fetch_add(1, Ordering::Relaxed);
    let mut subs = hub.subscribers.lock().unwrap();
    subs.push((token, subscriber));
    hub.any_global.store(true, Ordering::Release);
    SubscriberToken(token)
}

/// Removes a previously [`install`]ed subscriber.
pub fn uninstall(token: SubscriberToken) {
    let hub = hub();
    let mut subs = hub.subscribers.lock().unwrap();
    subs.retain(|(t, _)| *t != token.0);
    hub.any_global.store(!subs.is_empty(), Ordering::Release);
}

/// Runs `f` with `subscriber` additionally receiving every event
/// emitted **from the calling thread**. Scoped and thread-local, so
/// parallel tests never observe each other's events.
pub fn with_subscriber<T>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> T) -> T {
    LOCAL_SUBSCRIBER.with(|cell| cell.borrow_mut().push(subscriber));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            LOCAL_SUBSCRIBER.with(|cell| {
                cell.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// Whether any subscriber (global, or local to this thread) is
/// listening. Emit helpers check this themselves; hot loops should
/// capture it once before entering.
#[inline]
pub fn enabled() -> bool {
    hub().any_global.load(Ordering::Acquire)
        || LOCAL_SUBSCRIBER.with(|cell| !cell.borrow().is_empty())
}

/// Microseconds since the process telemetry epoch (first hub use).
pub fn now_micros() -> u64 {
    hub().epoch.elapsed().as_micros() as u64
}

/// Allocates a fresh process-unique span id.
pub fn next_span_id() -> u64 {
    hub().next_span.fetch_add(1, Ordering::Relaxed)
}

/// Assigns the calling thread's worker id; subsequently emitted events
/// carry it. Backends tag their worker threads, `ltsim worker` drive
/// threads tag themselves with the child's id.
pub fn set_worker(id: u64) {
    WORKER_ID.with(|cell| cell.set(Some(id)));
}

/// Clears the calling thread's worker id.
pub fn clear_worker() {
    WORKER_ID.with(|cell| cell.set(None));
}

/// The calling thread's worker id, if one was assigned.
pub fn current_worker() -> Option<u64> {
    WORKER_ID.with(|cell| cell.get())
}

/// Dispatches an event to every live subscriber (thread-local first,
/// then global). Does nothing when nothing is listening.
pub fn emit(event: &Event) {
    LOCAL_SUBSCRIBER.with(|cell| {
        for sub in cell.borrow().iter() {
            sub.event(event);
        }
    });
    if hub().any_global.load(Ordering::Acquire) {
        let subs = hub().subscribers.lock().unwrap();
        for (_, sub) in subs.iter() {
            sub.event(event);
        }
    }
}

/// Flushes every live subscriber.
pub fn flush() {
    LOCAL_SUBSCRIBER.with(|cell| {
        for sub in cell.borrow().iter() {
            sub.flush();
        }
    });
    let subs = hub().subscribers.lock().unwrap();
    for (_, sub) in subs.iter() {
        sub.flush();
    }
}

// ---------------------------------------------------------------------------
// Emit helpers
// ---------------------------------------------------------------------------

/// Emits a counter **delta** (`value` field). No-op when disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut ev = Event::now(EventKind::Counter, name);
    ev.fields.push(("value".to_string(), FieldValue::U64(delta)));
    emit(&ev);
}

/// Emits an instantaneous gauge level (`value` field) plus extra
/// fields. No-op when disabled.
pub fn gauge(name: &str, value: u64, fields: Vec<(String, FieldValue)>) {
    if !enabled() {
        return;
    }
    let mut ev = Event::now(EventKind::Gauge, name);
    ev.fields.push(("value".to_string(), FieldValue::U64(value)));
    ev.fields.extend(fields);
    emit(&ev);
}

/// Emits a discrete occurrence with a typed payload. No-op when
/// disabled.
pub fn point(name: &str, fields: Vec<(String, FieldValue)>) {
    if !enabled() {
        return;
    }
    let mut ev = Event::now(EventKind::Point, name);
    ev.fields = fields;
    emit(&ev);
}

/// Emits a structured warning. When **no** subscriber is listening the
/// message falls back to stderr, so operators never lose warnings that
/// used to be `eprintln!`s.
pub fn warning(name: &str, message: &str, fields: Vec<(String, FieldValue)>) {
    if !enabled() {
        eprintln!("warning: {message}");
        return;
    }
    let mut ev = Event::now(EventKind::Warning, name);
    ev.fields.push(("message".to_string(), FieldValue::Str(message.to_string())));
    ev.fields.extend(fields);
    emit(&ev);
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

/// A begin/end timed scope. [`span`] emits `span_begin` immediately;
/// dropping the guard (or calling [`Span::end_with`]) emits `span_end`
/// with `elapsed_us`. When telemetry is disabled the guard is inert
/// and costs one branch.
#[must_use = "dropping a Span ends it"]
pub struct Span {
    id: u64,
    name: String,
    start: Instant,
    live: bool,
}

/// Opens a span (see [`Span`]).
pub fn span(name: &str, fields: Vec<(String, FieldValue)>) -> Span {
    if !enabled() {
        return Span { id: 0, name: String::new(), start: Instant::now(), live: false };
    }
    let id = next_span_id();
    let mut ev = Event::now(EventKind::SpanBegin, name);
    ev.span = Some(id);
    ev.fields = fields;
    emit(&ev);
    Span { id, name: name.to_string(), start: Instant::now(), live: true }
}

impl Span {
    /// The span id, when the span is live (telemetry was enabled at
    /// open time).
    pub fn id(&self) -> Option<u64> {
        self.live.then_some(self.id)
    }

    /// Ends the span now, attaching extra fields to the `span_end`
    /// event.
    pub fn end_with(mut self, fields: Vec<(String, FieldValue)>) {
        self.close(fields);
    }

    fn close(&mut self, fields: Vec<(String, FieldValue)>) {
        if !self.live {
            return;
        }
        self.live = false;
        let mut ev = Event::now(EventKind::SpanEnd, &self.name);
        ev.span = Some(self.id);
        ev.fields.push((
            "elapsed_us".to_string(),
            FieldValue::U64(self.start.elapsed().as_micros() as u64),
        ));
        ev.fields.extend(fields);
        emit(&ev);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close(Vec::new());
    }
}

// ---------------------------------------------------------------------------
// Counter / Gauge accumulators
// ---------------------------------------------------------------------------

/// An atomic counter for warm paths: [`Counter::add`] is one relaxed
/// `fetch_add` with no event emission; [`Counter::emit`] publishes the
/// accumulated total as a single counter-delta event and resets.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a named counter at zero (usable in `static`s).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Adds to the counter (relaxed; no event).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current accumulated value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Publishes the accumulated value as one counter event and resets
    /// the accumulator. No-op (and no reset) when disabled.
    pub fn emit(&self) {
        if !enabled() {
            return;
        }
        let v = self.value.swap(0, Ordering::Relaxed);
        counter(self.name, v);
    }
}

/// An atomic gauge for warm paths: [`Gauge::set`] is one relaxed store;
/// [`Gauge::emit`] publishes the current level.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Creates a named gauge at zero (usable in `static`s).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, value: AtomicU64::new(0) }
    }

    /// Sets the level (relaxed; no event).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Publishes the current level as one gauge event. No-op when
    /// disabled.
    pub fn emit(&self) {
        if !enabled() {
            return;
        }
        gauge(self.name, self.value(), Vec::new());
    }
}

// ---------------------------------------------------------------------------
// Built-in subscribers
// ---------------------------------------------------------------------------

/// Writes each event as one JSON line. Tracks events and bytes written
/// (the telemetry-overhead numbers `ltsim bench` reports).
pub struct JsonLinesWriter {
    out: Mutex<Box<dyn Write + Send>>,
    events: AtomicU64,
    bytes: AtomicU64,
}

impl JsonLinesWriter {
    /// Creates (truncating) `path` and writes events to it, buffered.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<JsonLinesWriter> {
        let file = File::create(path)?;
        Ok(JsonLinesWriter::new(Box::new(BufWriter::new(file))))
    }

    /// Wraps an arbitrary writer (stdout, a Vec for tests, …).
    pub fn new(out: Box<dyn Write + Send>) -> JsonLinesWriter {
        JsonLinesWriter {
            out: Mutex::new(out),
            events: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Bytes written so far (including newlines).
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Subscriber for JsonLinesWriter {
    fn event(&self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        if out.write_all(line.as_bytes()).is_ok() {
            self.events.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// In-memory aggregation: event totals by kind, counter sums, gauge
/// peaks, and retained warning events. Powers the end-of-run summary
/// line and tests.
#[derive(Default)]
pub struct Aggregator {
    inner: Mutex<AggState>,
}

#[derive(Default)]
struct AggState {
    events: u64,
    kinds: HashMap<&'static str, u64>,
    counters: HashMap<String, u64>,
    gauge_peaks: HashMap<String, u64>,
    warnings: Vec<Event>,
}

impl Aggregator {
    /// Fresh, empty aggregator.
    pub fn new() -> Aggregator {
        Aggregator::default()
    }

    /// Total events observed.
    pub fn events(&self) -> u64 {
        self.inner.lock().unwrap().events
    }

    /// Events observed of one kind.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        *self.inner.lock().unwrap().kinds.get(kind.as_str()).unwrap_or(&0)
    }

    /// Sum of `value` deltas across counter events with this name.
    pub fn counter(&self, name: &str) -> u64 {
        *self.inner.lock().unwrap().counters.get(name).unwrap_or(&0)
    }

    /// Peak `value` across gauge events with this name.
    pub fn gauge_peak(&self, name: &str) -> Option<u64> {
        self.inner.lock().unwrap().gauge_peaks.get(name).copied()
    }

    /// Retained warning events (full copies, in arrival order).
    pub fn warnings(&self) -> Vec<Event> {
        self.inner.lock().unwrap().warnings.clone()
    }

    /// Warnings observed with this name.
    pub fn warning_count(&self, name: &str) -> u64 {
        self.inner.lock().unwrap().warnings.iter().filter(|w| w.name == name).count() as u64
    }
}

impl Subscriber for Aggregator {
    fn event(&self, event: &Event) {
        let mut state = self.inner.lock().unwrap();
        state.events += 1;
        *state.kinds.entry(event.kind.as_str()).or_insert(0) += 1;
        match event.kind {
            EventKind::Counter => {
                if let Some(v) = event.value() {
                    *state.counters.entry(event.name.clone()).or_insert(0) += v;
                }
            }
            EventKind::Gauge => {
                if let Some(v) = event.value() {
                    let peak = state.gauge_peaks.entry(event.name.clone()).or_insert(0);
                    *peak = (*peak).max(v);
                }
            }
            EventKind::Warning => state.warnings.push(event.clone()),
            _ => {}
        }
    }
}

/// Captures full event copies for assertions in tests.
#[derive(Default)]
pub struct Capture {
    events: Mutex<Vec<Event>>,
}

impl Capture {
    /// Fresh, empty capture.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// Copies of every captured event, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Captured events with the given name.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events.lock().unwrap().iter().filter(|e| e.name == name).cloned().collect()
    }
}

impl Subscriber for Capture {
    fn event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_matches_schema_shape() {
        let mut ev = Event {
            t_micros: 42,
            kind: EventKind::SpanBegin,
            name: "spec".to_string(),
            span: Some(7),
            worker: Some(2),
            fields: vec![("label".to_string(), FieldValue::Str("a/b".to_string()))],
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"v":1,"t":42,"kind":"span_begin","name":"spec","span":7,"worker":2,"fields":{"label":"a/b"}}"#
        );
        ev.span = None;
        ev.worker = None;
        ev.fields = vec![
            ("u".to_string(), FieldValue::U64(1)),
            ("i".to_string(), FieldValue::I64(-2)),
            ("f".to_string(), FieldValue::F64(1.5)),
            ("b".to_string(), FieldValue::Bool(true)),
        ];
        assert_eq!(
            ev.to_json_line(),
            r#"{"v":1,"t":42,"kind":"span_begin","name":"spec","fields":{"u":1,"i":-2,"f":1.5,"b":true}}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event {
            t_micros: 0,
            kind: EventKind::Warning,
            name: "w".to_string(),
            span: None,
            worker: None,
            fields: vec![(
                "message".to_string(),
                FieldValue::Str("quote \" slash \\ nl \n ctl \u{1}".to_string()),
            )],
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"v\":1,\"t\":0,\"kind\":\"warning\",\"name\":\"w\",\"fields\":{\"message\":\"quote \\\" slash \\\\ nl \\n ctl \\u0001\"}}"
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let ev = Event {
            t_micros: 0,
            kind: EventKind::Point,
            name: "p".to_string(),
            span: None,
            worker: None,
            fields: vec![("x".to_string(), FieldValue::F64(f64::NAN))],
        };
        assert!(ev.to_json_line().contains("\"x\":null"));
    }

    #[test]
    fn kind_strings_round_trip() {
        for kind in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Warning,
            EventKind::Point,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nope"), None);
    }

    #[test]
    fn disabled_emitters_are_inert() {
        // No local subscriber on this thread; the helpers must not
        // panic and the span guard must be dead.
        let span = span("quiet", Vec::new());
        assert_eq!(span.id(), None);
        drop(span);
        counter("quiet", 1);
        gauge("quiet", 1, Vec::new());
        point("quiet", Vec::new());
    }

    #[test]
    fn with_subscriber_scopes_capture_to_the_thread() {
        let capture = Arc::new(Capture::new());
        with_subscriber(capture.clone(), || {
            assert!(enabled());
            counter("c", 2);
            counter("c", 3);
            let span = span("s", vec![("k".to_string(), FieldValue::U64(9))]);
            assert!(span.id().is_some());
            drop(span);
        });
        assert!(!enabled());
        let events = capture.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Counter);
        assert_eq!(events[2].kind, EventKind::SpanBegin);
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[2].span, events[3].span);
        assert!(events[3].field("elapsed_us").is_some());
        // Events emitted on another thread do not reach the capture.
        counter("c", 100);
        assert_eq!(capture.events().len(), 4);
    }

    #[test]
    fn span_end_with_attaches_fields() {
        let capture = Arc::new(Capture::new());
        with_subscriber(capture.clone(), || {
            let span = span("s", Vec::new());
            span.end_with(vec![("ok".to_string(), FieldValue::Bool(true))]);
        });
        let ends = capture.named("s");
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[1].field("ok"), Some(&FieldValue::Bool(true)));
    }

    #[test]
    fn aggregator_sums_counters_and_peaks_gauges() {
        let agg = Arc::new(Aggregator::new());
        with_subscriber(agg.clone(), || {
            counter("hits", 1);
            counter("hits", 4);
            gauge("mem", 10, Vec::new());
            gauge("mem", 30, Vec::new());
            gauge("mem", 20, Vec::new());
            warning("corrupt", "oh no", Vec::new());
        });
        assert_eq!(agg.events(), 6);
        assert_eq!(agg.counter("hits"), 5);
        assert_eq!(agg.counter("absent"), 0);
        assert_eq!(agg.gauge_peak("mem"), Some(30));
        assert_eq!(agg.warning_count("corrupt"), 1);
        assert_eq!(agg.warnings()[0].field("message"), Some(&FieldValue::Str("oh no".to_string())));
    }

    #[test]
    fn counter_accumulator_publishes_and_resets() {
        let c = Counter::new("acc");
        c.add(2);
        c.add(3);
        assert_eq!(c.value(), 5);
        let agg = Arc::new(Aggregator::new());
        with_subscriber(agg.clone(), || c.emit());
        assert_eq!(agg.counter("acc"), 5);
        assert_eq!(c.value(), 0, "emit resets the accumulator");
        // Disabled emit keeps the accumulation.
        c.add(7);
        c.emit();
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn gauge_accumulator_publishes_level() {
        let g = Gauge::new("level");
        g.set(11);
        let agg = Arc::new(Aggregator::new());
        with_subscriber(agg.clone(), || g.emit());
        assert_eq!(agg.gauge_peak("level"), Some(11));
        assert_eq!(g.value(), 11);
    }

    #[test]
    fn worker_id_is_thread_scoped_and_stamped() {
        let capture = Arc::new(Capture::new());
        set_worker(9);
        with_subscriber(capture.clone(), || point("p", Vec::new()));
        clear_worker();
        assert_eq!(capture.events()[0].worker, Some(9));
        let handle = std::thread::spawn(current_worker);
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn json_writer_counts_events_and_bytes() {
        let writer = Arc::new(JsonLinesWriter::new(Box::new(Vec::new())));
        with_subscriber(writer.clone(), || {
            counter("a", 1);
            gauge("b", 2, Vec::new());
        });
        assert_eq!(writer.events_written(), 2);
        assert!(writer.bytes_written() > 40);
        writer.flush();
    }

    #[test]
    fn json_writer_creates_parseable_lines_on_disk() {
        let dir = std::env::temp_dir().join(format!("ltc_telemetry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let writer = Arc::new(JsonLinesWriter::create(&path).unwrap());
        with_subscriber(writer.clone(), || {
            counter("hits", 3);
        });
        writer.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"v\":1,"));
        assert!(text.trim_end().ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_install_and_uninstall_toggle_enabled() {
        // Global state: this test is the only one touching the global
        // hub, and it restores it before returning.
        let capture = Arc::new(Capture::new());
        let token = install(capture.clone());
        assert!(enabled());
        counter("global", 1);
        uninstall(token);
        assert!(!enabled());
        counter("global", 1);
        assert_eq!(capture.events().len(), 1);
    }

    #[test]
    fn wire_line_wraps_the_event() {
        let ev = Event::now(EventKind::Point, "p");
        let line = wire_line(&ev);
        assert!(line.starts_with("{\"event\":{\"v\":1,"));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn warning_falls_back_to_stderr_without_subscribers() {
        // Nothing to assert on stderr contents here; the contract under
        // test is "does not panic and does not emit" when disabled.
        warning("fallback", "telemetry off", Vec::new());
    }
}
