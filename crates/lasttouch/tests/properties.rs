//! Property-based invariants of the last-touch signature machinery.

use ltc_cache::CacheConfig;
use ltc_lasttouch::{Confidence, HistoryTable, SignatureScheme};
use ltc_trace::{Addr, Pc};
use proptest::prelude::*;

/// Small L1-like geometry for dense aliasing: 8 sets x 2 ways.
fn small_l1() -> CacheConfig {
    CacheConfig {
        total_bytes: 1024,
        ways: 2,
        line_bytes: 64,
        policy: ltc_cache::ReplacementPolicy::Lru,
    }
}

proptest! {
    /// The fundamental consistency property: replaying the same access and
    /// eviction history yields identical signatures.
    #[test]
    fn identical_histories_give_identical_signatures(
        ops in prop::collection::vec((0u64..32, 0u64..16), 1..200),
    ) {
        let mut t1 = HistoryTable::new(small_l1(), SignatureScheme::trace_mode());
        let mut t2 = HistoryTable::new(small_l1(), SignatureScheme::trace_mode());
        for &(line, pc) in &ops {
            let a = Addr(line * 64);
            let s1 = t1.record_access(a, Pc(0x400 + pc));
            let s2 = t2.record_access(a, Pc(0x400 + pc));
            prop_assert_eq!(s1, s2);
        }
    }

    /// An eviction's training signature always equals the victim's last
    /// lookup signature (the train/lookup identity the predictor needs).
    #[test]
    fn eviction_signature_matches_last_lookup(
        pcs in prop::collection::vec(0u64..64, 1..20),
    ) {
        let mut t = HistoryTable::new(small_l1(), SignatureScheme::trace_mode());
        let victim = Addr(0);
        let mut last_sig = None;
        for &pc in &pcs {
            last_sig = Some(t.record_access(victim, Pc(0x400 + pc)));
        }
        // Replacement in the same set: line 8 maps to set 0 too (8 sets).
        let rec = t.record_eviction(victim, Addr(8 * 64)).expect("tracked block");
        prop_assert_eq!(Some(rec.signature), last_sig);
        prop_assert_eq!(rec.predicted, Addr(8 * 64));
    }

    /// Confidence counters stay within the 2-bit range under any update mix.
    #[test]
    fn confidence_is_always_two_bits(updates in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut c = Confidence::initial();
        for up in updates {
            c = if up { c.strengthen() } else { c.weaken() };
            prop_assert!(c.value() <= 3);
        }
    }

    /// Signatures are insensitive to *when* unrelated sets are touched:
    /// interleaving accesses to a different set never changes a block's
    /// signature sequence (per-block traces, the design note in
    /// `ltc_lasttouch::history`).
    #[test]
    fn other_sets_never_perturb_signatures(
        pcs in prop::collection::vec(0u64..16, 1..30),
        noise_at in prop::collection::vec(any::<bool>(), 1..30),
    ) {
        let mut quiet = HistoryTable::new(small_l1(), SignatureScheme::trace_mode());
        let mut noisy = HistoryTable::new(small_l1(), SignatureScheme::trace_mode());
        let block = Addr(0); // set 0
        let other = Addr(64); // set 1
        for (i, &pc) in pcs.iter().enumerate() {
            if noise_at.get(i).copied().unwrap_or(false) {
                let _ = noisy.record_access(other, Pc(0x900));
            }
            let a = quiet.record_access(block, Pc(0x400 + pc));
            let b = noisy.record_access(block, Pc(0x400 + pc));
            prop_assert_eq!(a, b, "noise in set 1 must not disturb set 0");
        }
    }

    /// Truncated (timing-mode) signatures always fit their bit budget.
    #[test]
    fn timing_signatures_fit_23_bits(
        trace in any::<u64>(),
        prev in any::<u64>(),
        line in any::<u64>(),
    ) {
        let s = SignatureScheme::timing_mode().compute(trace, prev, line);
        prop_assert!(s.0 < (1 << 23));
    }
}
