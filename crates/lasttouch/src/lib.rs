//! Last-touch history tables and signature construction.
//!
//! Both the Dead-Block Correlating Prefetcher (DBCP, the paper's baseline
//! from Lai & Falsafi, the paper's reference 12) and LT-cords itself construct predictions from
//! *last-touch signatures*: a hash of the PC trace that touched a cache block
//! from its fill until its eviction, combined with the address history of the
//! block's cache set (paper Sections 2 and 4.1). This crate implements that
//! shared machinery once:
//!
//! * [`Signature`] / [`SignatureScheme`] — the truncated signature hash
//!   (32-bit in the paper's trace-driven studies, 23-bit in the
//!   cycle-accurate configuration of Section 5.6).
//! * [`Confidence`] — the 2-bit saturating confidence counter initialized to
//!   2 "to expedite training" (Section 4.4).
//! * [`HistoryTable`] — a structure organized like the L1D tag array that
//!   accumulates per-block PC traces and per-set eviction history, yielding
//!   a lookup signature on every committed access and a training
//!   [`SignatureRecord`] on every eviction.
//!
//! # Example
//!
//! ```
//! use ltc_lasttouch::{HistoryTable, SignatureScheme};
//! use ltc_cache::CacheConfig;
//! use ltc_trace::{Addr, Pc};
//!
//! let mut history = HistoryTable::new(CacheConfig::l1d(), SignatureScheme::trace_mode());
//! // An access to a block updates its trace and yields a lookup signature.
//! let sig = history.record_access(Addr(0x1000), Pc(0x400100));
//! // When the block is later evicted by a miss to 0x9000, training data
//! // (the same signature, paired with the replacement) is produced.
//! let rec = history.record_eviction(Addr(0x1000), Addr(0x9000)).unwrap();
//! assert_eq!(rec.signature, sig);
//! assert_eq!(rec.predicted, Addr(0x9000));
//! ```

pub mod confidence;
pub mod history;
pub mod signature;

pub use confidence::Confidence;
pub use history::{HistoryTable, HistoryTableImage};
pub use signature::{Signature, SignatureRecord, SignatureScheme};
