//! The history table: per-block PC traces and per-frame address history.
//!
//! # Design note: per-block vs per-set traces
//!
//! Section 2 of the paper (following the original DBCP design of Lai &
//! Falsafi) describes *per-block* traces: "the predictor tracks all
//! instructions {PCi, PCj, PCk} accessing block A2 from the miss until A2 is
//! evicted". Section 4.1 loosely says the trace covers "the corresponding
//! L1D set", which is the same thing for the direct-mapped example but is
//! not self-consistent for the 2-way L1D of Table 1: accesses to the other
//! way between a block's last touch and its eviction would make the
//! signature computed at eviction (training) differ from the signature
//! computed at the last touch (lookup), so recurring sequences would never
//! match. We therefore implement the Section 2 formulation — a per-block
//! trace plus a per-frame "previous line" (the block that occupied the frame
//! before the current block) — which makes training and lookup signatures
//! provably identical whenever the access sequence recurs, for any
//! associativity.

use ltc_cache::{CacheConfig, ImageError};
use ltc_trace::{Addr, Pc};
use serde::{Deserialize, Serialize};

use crate::signature::{extend_trace, Signature, SignatureRecord, SignatureScheme};

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    valid: bool,
    /// Line number (address / line size) of the tracked block. Full line
    /// numbers — not per-set tags — feed the signature hash, because the
    /// paper hashes the *address history* {A1, A2} (Section 2): per-set tags
    /// would make signatures collide across sets.
    line: u64,
    trace_hash: u64,
    /// Demand accesses recorded for the resident block.
    accesses: u32,
    /// Line number of the block that previously occupied this frame (the
    /// "A1" of the paper's {A1, A2} example).
    prev_line: u64,
}

/// History table organized like the L1D tag array (paper Figure 5, left).
///
/// The driver must mirror the cache's behaviour into this table:
/// [`HistoryTable::record_access`] for every committed access (hit or the
/// miss access itself, after the fill) and [`HistoryTable::record_eviction`]
/// for every eviction (demand- or prefetch-induced), in cache order.
#[derive(Debug, Clone)]
pub struct HistoryTable {
    scheme: SignatureScheme,
    slots: Vec<Slot>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
}

impl HistoryTable {
    /// Creates a history table mirroring the geometry of `l1`.
    ///
    /// # Panics
    ///
    /// Panics if `l1` or `scheme` is invalid.
    pub fn new(l1: CacheConfig, scheme: SignatureScheme) -> Self {
        l1.validate();
        scheme.validate();
        let sets = l1.sets();
        let ways = l1.ways as usize;
        HistoryTable {
            scheme,
            slots: vec![Slot::default(); sets as usize * ways],
            ways,
            set_mask: sets - 1,
            line_shift: l1.line_bytes.trailing_zeros(),
        }
    }

    /// The signature scheme in use.
    pub fn scheme(&self) -> SignatureScheme {
        self.scheme
    }

    /// On-chip storage estimate in bytes: per frame, a 23-bit trace hash
    /// plus a tag-width previous tag (~6 bytes per L1 frame, ~6 KB for the
    /// paper's 1024-frame L1D, consistent with the paper's 214 KB total
    /// on-chip budget).
    pub fn storage_bytes(&self) -> u64 {
        (self.slots.len() as u64) * 6
    }

    #[inline]
    fn set_and_line(&self, addr: Addr) -> (u64, u64) {
        let line = addr.0 >> self.line_shift;
        (line & self.set_mask, line)
    }

    #[inline]
    fn set_slots(&mut self, set: u64) -> &mut [Slot] {
        let start = (set as usize) * self.ways;
        &mut self.slots[start..start + self.ways]
    }

    /// Records a committed access to the block containing `addr` and returns
    /// the block's updated lookup signature.
    ///
    /// Call this after the cache access (and after [`Self::record_eviction`]
    /// if the access missed and evicted a block), so the table tracks the
    /// newly resident block.
    pub fn record_access(&mut self, addr: Addr, pc: Pc) -> Signature {
        let (set, line) = self.set_and_line(addr);
        let scheme = self.scheme;
        let slots = self.set_slots(set);
        let slot = match slots.iter_mut().find(|s| s.valid && s.line == line) {
            Some(s) => s,
            None => {
                // Cold fill (no eviction preceded): claim an empty frame, or
                // fall back to frame 0 if the table lost sync with the cache.
                let idx = slots.iter().position(|s| !s.valid).unwrap_or(0);
                let s = &mut slots[idx];
                let prev = if s.valid { s.line } else { s.prev_line };
                *s = Slot { valid: true, line, trace_hash: 0, accesses: 0, prev_line: prev };
                s
            }
        };
        slot.trace_hash = extend_trace(slot.trace_hash, pc);
        slot.accesses += 1;
        scheme.compute(slot.trace_hash, slot.prev_line, line)
    }

    /// Records the eviction of `evicted` in favour of `replacement`,
    /// returning the training record (the evicted block's final last-touch
    /// signature paired with the replacement address).
    ///
    /// Returns `None` when the evicted block was never demand-accessed (an
    /// unused prefetch) or was not tracked — such "signatures" carry no
    /// last-touch information and would only pollute the predictor.
    pub fn record_eviction(&mut self, evicted: Addr, replacement: Addr) -> Option<SignatureRecord> {
        let (set, evicted_line) = self.set_and_line(evicted);
        let (rset, replacement_line) = self.set_and_line(replacement);
        debug_assert_eq!(set, rset, "replacement must map to the victim's set");
        let scheme = self.scheme;
        let line_shift = self.line_shift;
        let slots = self.set_slots(set);
        let idx = slots
            .iter()
            .position(|s| s.valid && s.line == evicted_line)
            .or_else(|| slots.iter().position(|s| !s.valid))
            .unwrap_or(0);
        let slot = &mut slots[idx];
        let record = if slot.valid && slot.line == evicted_line && slot.accesses > 0 {
            let sig = scheme.compute(slot.trace_hash, slot.prev_line, evicted_line);
            Some(SignatureRecord::new(sig, replacement.line(1 << line_shift)))
        } else {
            None
        };
        // The frame now tracks the replacement, remembering the victim as
        // its address history.
        *slot = Slot {
            valid: true,
            line: replacement_line,
            trace_hash: 0,
            accesses: 0,
            prev_line: evicted_line,
        };
        record
    }

    /// Snapshots the table's complete per-frame state.
    pub fn to_image(&self) -> HistoryTableImage {
        HistoryTableImage {
            scheme: self.scheme,
            valid: self.slots.iter().map(|s| s.valid).collect(),
            line: self.slots.iter().map(|s| s.line).collect(),
            trace_hash: self.slots.iter().map(|s| s.trace_hash).collect(),
            accesses: self.slots.iter().map(|s| s.accesses).collect(),
            prev_line: self.slots.iter().map(|s| s.prev_line).collect(),
        }
    }

    /// Overwrites this table's per-frame state from `image`.
    ///
    /// # Errors
    ///
    /// [`ImageError::ConfigMismatch`] when the image was captured under a
    /// different signature scheme, [`ImageError::Shape`] when a state
    /// vector's length disagrees with this table's frame count.
    pub fn restore_image(&mut self, image: &HistoryTableImage) -> Result<(), ImageError> {
        if image.scheme != self.scheme {
            return Err(ImageError::ConfigMismatch {
                expected: format!("{:?}", self.scheme),
                found: format!("{:?}", image.scheme),
            });
        }
        let frames = self.slots.len();
        for (field, found) in [
            ("valid", image.valid.len()),
            ("line", image.line.len()),
            ("trace_hash", image.trace_hash.len()),
            ("accesses", image.accesses.len()),
            ("prev_line", image.prev_line.len()),
        ] {
            if found != frames {
                return Err(ImageError::Shape { field, expected: frames, found });
            }
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            *slot = Slot {
                valid: image.valid[i],
                line: image.line[i],
                trace_hash: image.trace_hash[i],
                accesses: image.accesses[i],
                prev_line: image.prev_line[i],
            };
        }
        Ok(())
    }

    /// Computes the current lookup signature for `addr` without mutating the
    /// table (diagnostics).
    pub fn peek_signature(&self, addr: Addr) -> Option<Signature> {
        let (set, line) = self.set_and_line(addr);
        let start = (set as usize) * self.ways;
        self.slots[start..start + self.ways]
            .iter()
            .find(|s| s.valid && s.line == line)
            .map(|s| self.scheme.compute(s.trace_hash, s.prev_line, line))
    }
}

/// Snapshot of a [`HistoryTable`]'s per-frame state (one entry per frame
/// in each parallel vector), tagged with the signature scheme so a
/// restore under a different scheme is a typed error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryTableImage {
    /// Signature scheme the donor table was configured with.
    pub scheme: SignatureScheme,
    /// Per-frame valid bits.
    pub valid: Vec<bool>,
    /// Per-frame tracked line numbers.
    pub line: Vec<u64>,
    /// Per-frame PC trace hashes.
    pub trace_hash: Vec<u64>,
    /// Per-frame demand access counts.
    pub accesses: Vec<u32>,
    /// Per-frame previous-occupant line numbers.
    pub prev_line: Vec<u64>,
}

impl HistoryTableImage {
    /// Bytes of simulated state the image carries: 29 bytes per frame
    /// (1 valid + 8 line + 8 trace hash + 4 accesses + 8 previous line).
    pub fn image_bytes(&self) -> u64 {
        self.valid.len() as u64 * 29
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HistoryTable {
        HistoryTable::new(CacheConfig::l1d(), SignatureScheme::trace_mode())
    }

    /// Two L1 addresses in the same set (512 sets x 64-byte lines).
    const SET_SPAN: u64 = 512 * 64;

    #[test]
    fn lookup_signature_matches_training_signature_on_recurrence() {
        let mut t = table();
        // First occurrence: fill A, touch it twice, then evict in favour of B.
        t.record_access(Addr(0x0), Pc(0x100));
        t.record_access(Addr(0x0), Pc(0x104));
        let rec = t.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        t.record_access(Addr(SET_SPAN), Pc(0x200));
        // ... B dies, A returns (recurrence); the frame's prev_tag is B now,
        // so run the same history again to re-establish identical state.
        t.record_eviction(Addr(SET_SPAN), Addr(0x0)).unwrap();
        t.record_access(Addr(0x0), Pc(0x100));
        let lookup = t.record_access(Addr(0x0), Pc(0x104));
        // The block was filled over B this time, not over nothing, so the
        // prev_tag differs from the very first occurrence; run one more
        // cycle to reach the steady state where A is always filled over B.
        t.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        t.record_access(Addr(SET_SPAN), Pc(0x200));
        let rec2 = t.record_eviction(Addr(SET_SPAN), Addr(0x0)).unwrap();
        t.record_access(Addr(0x0), Pc(0x100));
        let lookup2 = t.record_access(Addr(0x0), Pc(0x104));
        let rec3 = t.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        // Steady state: the lookup signature at A's last touch equals the
        // signature created when A is subsequently evicted.
        assert_eq!(lookup2, rec3.signature);
        assert_eq!(rec2.predicted, Addr(0x0).line(64));
        // And recurrence produces identical signatures across iterations.
        assert_eq!(lookup, lookup2);
        let _ = rec;
    }

    #[test]
    fn eviction_yields_replacement_as_prediction() {
        let mut t = table();
        t.record_access(Addr(0x40), Pc(0x100));
        let rec = t.record_eviction(Addr(0x40), Addr(0x40 + SET_SPAN)).unwrap();
        assert_eq!(rec.predicted, Addr(0x40 + SET_SPAN));
        assert!(rec.confidence.is_confident());
    }

    #[test]
    fn untouched_block_eviction_is_suppressed() {
        let mut t = table();
        // Block installed via eviction bookkeeping but never accessed
        // (a prefetch that was never used).
        t.record_access(Addr(0x0), Pc(0x100));
        t.record_eviction(Addr(0x0), Addr(SET_SPAN)); // SET_SPAN now tracked, 0 accesses
        let rec = t.record_eviction(Addr(SET_SPAN), Addr(2 * SET_SPAN));
        assert!(rec.is_none(), "unused block has no last touch to sign");
    }

    #[test]
    fn different_pc_traces_give_different_signatures() {
        let mut t1 = table();
        let mut t2 = table();
        t1.record_access(Addr(0x0), Pc(0x100));
        t2.record_access(Addr(0x0), Pc(0x999));
        let r1 = t1.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        let r2 = t2.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        assert_ne!(r1.signature, r2.signature);
    }

    #[test]
    fn trace_length_matters() {
        let mut t1 = table();
        let mut t2 = table();
        t1.record_access(Addr(0x0), Pc(0x100));
        t2.record_access(Addr(0x0), Pc(0x100));
        t2.record_access(Addr(0x0), Pc(0x100)); // extra touch
        let r1 = t1.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        let r2 = t2.record_eviction(Addr(0x0), Addr(SET_SPAN)).unwrap();
        assert_ne!(r1.signature, r2.signature);
    }

    #[test]
    fn ways_are_tracked_independently() {
        let mut t = table();
        let a = Addr(0x0);
        let b = Addr(SET_SPAN); // same set, different tag
        t.record_access(a, Pc(0x1));
        t.record_access(b, Pc(0x2));
        t.record_access(a, Pc(0x3));
        // Evicting b must not disturb a's trace.
        let _ = t.record_eviction(b, Addr(2 * SET_SPAN));
        let sig_before = t.peek_signature(a).unwrap();
        let lookup = t.record_access(a, Pc(0x4));
        assert_ne!(sig_before, lookup, "a's trace keeps extending");
        assert!(t.peek_signature(Addr(2 * SET_SPAN)).is_some(), "replacement tracked");
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut t = table();
        t.record_access(Addr(0x0), Pc(0x1));
        let p1 = t.peek_signature(Addr(0x0)).unwrap();
        let p2 = t.peek_signature(Addr(0x0)).unwrap();
        assert_eq!(p1, p2);
        assert!(t.peek_signature(Addr(0x40)).is_none());
    }

    #[test]
    fn storage_estimate_scales_with_frames() {
        let t = table();
        assert_eq!(t.storage_bytes(), 1024 * 6); // 512 sets x 2 ways
    }
}
