//! Two-bit saturating confidence counters (paper Section 4.4).

/// A 2-bit saturating confidence counter.
///
/// LT-cords predicts only from signatures whose counter is at or above the
/// threshold (2). Counters are initialized to 2 "because most signatures are
/// valid immediately after creation … to expedite training" (Section 4.4),
/// are incremented on correct predictions, and decremented on incorrect
/// ones, saturating at 0 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Confidence(u8);

impl Confidence {
    /// Saturation maximum (2 bits).
    pub const MAX: u8 = 3;
    /// Prediction threshold.
    pub const THRESHOLD: u8 = 2;

    /// The paper's initial value of 2.
    pub const fn initial() -> Self {
        Confidence(2)
    }

    /// Creates a counter clamped to the 2-bit range.
    pub fn new(v: u8) -> Self {
        Confidence(v.min(Self::MAX))
    }

    /// Raw counter value (0..=3).
    pub fn value(self) -> u8 {
        self.0
    }

    /// Whether predictions should be made from this entry.
    pub fn is_confident(self) -> bool {
        self.0 >= Self::THRESHOLD
    }

    /// Saturating increment (correct prediction observed).
    #[must_use]
    pub fn strengthen(self) -> Self {
        Confidence((self.0 + 1).min(Self::MAX))
    }

    /// Saturating decrement (incorrect prediction observed).
    #[must_use]
    pub fn weaken(self) -> Self {
        Confidence(self.0.saturating_sub(1))
    }
}

impl Default for Confidence {
    fn default() -> Self {
        Confidence::initial()
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conf:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_confident() {
        assert_eq!(Confidence::initial().value(), 2);
        assert!(Confidence::initial().is_confident());
    }

    #[test]
    fn strengthen_saturates_at_three() {
        let c = Confidence::initial().strengthen().strengthen().strengthen();
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn weaken_saturates_at_zero() {
        let c = Confidence::new(1).weaken().weaken();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_wrong_prediction_silences_a_fresh_entry() {
        // init 2 -> weaken -> 1, below the threshold.
        assert!(!Confidence::initial().weaken().is_confident());
    }

    #[test]
    fn new_clamps() {
        assert_eq!(Confidence::new(200).value(), 3);
    }
}
