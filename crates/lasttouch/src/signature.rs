//! Last-touch signature hashing.

use std::fmt;

use ltc_trace::{Addr, Pc};
use serde::{Deserialize, Serialize};

use crate::confidence::Confidence;

/// Signature width configuration.
///
/// The paper uses 32-bit signatures for trace-driven studies "to minimize
/// the effects of hash collisions" and 23-bit signatures in the
/// cycle-accurate configuration (14 index bits + 9 tag bits in the signature
/// cache, Section 5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignatureScheme {
    /// Signature width in bits (1..=32).
    pub bits: u32,
}

impl SignatureScheme {
    /// 32-bit signatures (Section 5: trace-driven results).
    pub const fn trace_mode() -> Self {
        SignatureScheme { bits: 32 }
    }

    /// 23-bit signatures (Section 5.6: cycle-accurate configuration).
    pub const fn timing_mode() -> Self {
        SignatureScheme { bits: 23 }
    }

    /// Bit mask selecting the signature's low bits.
    #[inline]
    pub fn mask(&self) -> u32 {
        if self.bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Checks the scheme is usable.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 32.
    pub fn validate(&self) {
        assert!((1..=32).contains(&self.bits), "signature width must be 1..=32 bits");
    }

    /// Computes a signature from the block's accumulated PC-trace hash, the
    /// tag most recently evicted from the block's set (address history), and
    /// the block's own tag.
    #[inline]
    pub fn compute(&self, trace_hash: u64, prev_evicted_tag: u64, block_tag: u64) -> Signature {
        let mixed = mix64(
            trace_hash
                ^ mix64(prev_evicted_tag ^ 0x9e37_79b9_7f4a_7c15)
                ^ block_tag.wrapping_mul(0xff51_afd7_ed55_8ccd),
        );
        Signature((mixed as u32) & self.mask())
    }
}

impl Default for SignatureScheme {
    fn default() -> Self {
        SignatureScheme::trace_mode()
    }
}

/// A last-touch signature: the key under which a prediction is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Signature(pub u32);

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// One unit of training data: a signature paired with the block address that
/// replaced the dying block, plus the confidence counter that travels with it
/// (initialized to 2 per Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureRecord {
    /// The last-touch signature of the evicted block.
    pub signature: Signature,
    /// Line address of the block that replaced it (the prefetch target).
    pub predicted: Addr,
    /// Prediction confidence.
    pub confidence: Confidence,
}

impl SignatureRecord {
    /// Creates a record with the paper's initial confidence of 2.
    pub fn new(signature: Signature, predicted: Addr) -> Self {
        SignatureRecord { signature, predicted, confidence: Confidence::initial() }
    }

    /// On-chip/off-chip storage footprint of one signature, in bytes.
    ///
    /// Section 5.4 charges 5 bytes per signature (23-bit history hash +
    /// 2-bit confidence + 15-bit prediction tag).
    pub const STORAGE_BYTES: u64 = 5;
}

/// Incrementally extends a per-block PC-trace hash with one committed PC.
///
/// The trace encoding is a truncated hash updated on every access to the
/// block and reset on eviction (paper Section 4.1); the exact function is an
/// implementation choice, so we use an FNV-style multiply-xor that is cheap
/// and order sensitive (the trace `{PCi, PCj}` differs from `{PCj, PCi}`).
#[inline]
pub fn extend_trace(trace_hash: u64, pc: Pc) -> u64 {
    (trace_hash ^ pc.0).wrapping_mul(0x0000_0100_0000_01b3)
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_mode_uses_full_width() {
        assert_eq!(SignatureScheme::trace_mode().mask(), u32::MAX);
    }

    #[test]
    fn timing_mode_truncates_to_23_bits() {
        let s = SignatureScheme::timing_mode();
        assert_eq!(s.mask(), (1 << 23) - 1);
        let sig = s.compute(0xdead_beef_dead_beef, 42, 7);
        assert!(sig.0 < (1 << 23));
    }

    #[test]
    fn trace_extension_is_order_sensitive() {
        let a = extend_trace(extend_trace(0, Pc(1)), Pc(2));
        let b = extend_trace(extend_trace(0, Pc(2)), Pc(1));
        assert_ne!(a, b);
    }

    #[test]
    fn signature_depends_on_all_inputs() {
        let s = SignatureScheme::trace_mode();
        let base = s.compute(1, 2, 3);
        assert_ne!(s.compute(9, 2, 3), base, "trace hash matters");
        assert_ne!(s.compute(1, 9, 3), base, "previous evicted tag matters");
        assert_ne!(s.compute(1, 2, 9), base, "block tag matters");
    }

    #[test]
    fn signature_is_deterministic() {
        let s = SignatureScheme::trace_mode();
        assert_eq!(s.compute(11, 22, 33), s.compute(11, 22, 33));
    }

    #[test]
    fn record_starts_confident() {
        let r = SignatureRecord::new(Signature(1), Addr(64));
        assert!(r.confidence.is_confident());
        assert_eq!(r.confidence.value(), 2);
    }

    #[test]
    fn mix64_separates_close_inputs() {
        // Note: mix64(0) == 0 is a known fixed point of the SplitMix64
        // finalizer; `compute` xors constants into its inputs so the fixed
        // point never reaches it.
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(1), 1);
        assert!(mix64(1).count_ones() > 16, "output should look random");
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn rejects_zero_width() {
        SignatureScheme { bits: 0 }.validate();
    }

    #[test]
    fn collision_rate_is_low_at_32_bits() {
        // 10k random-ish inputs should essentially never collide at 32 bits.
        let s = SignatureScheme::trace_mode();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(s.compute(mix64(i), i % 17, i % 129));
        }
        assert!(seen.len() > 9_990, "unexpected collision rate: {}", 10_000 - seen.len());
    }
}
