//! The trace-driven coverage simulator (Figure 8's methodology).

use ltc_cache::{Hierarchy, HierarchyConfig, MemLevel};
use ltc_predictors::{PredictorTraffic, PrefetchLevel, Prefetcher};
use ltc_trace::TraceSource;
use serde::{Deserialize, Serialize};

/// Configuration of a coverage run.
#[derive(Debug, Clone, Copy)]
pub struct CoverageConfig {
    /// Cache hierarchy geometry (both the predictor and shadow baseline).
    pub hierarchy: HierarchyConfig,
    /// Maximum accesses to simulate.
    pub limit: u64,
    /// Accesses simulated before statistics collection begins. The paper
    /// traces entire benchmarks (hundreds of recurrences), so its averages
    /// are steady-state; scaled runs approximate that by excluding the
    /// cold training prefix.
    pub warmup: u64,
}

impl CoverageConfig {
    /// The paper's hierarchy with the given access budget and no warm-up.
    pub fn paper(limit: u64) -> Self {
        CoverageConfig { hierarchy: HierarchyConfig::paper(), limit, warmup: 0 }
    }

    /// Sets the warm-up prefix.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }
}

/// Classification of one run's misses, Figure 8 style.
///
/// The *prediction opportunity* is the baseline run's L1D miss count.
/// `correct + incorrect + train == opportunity` (the paper's invariant);
/// `early` counts predictor-induced premature evictions and is reported
/// above 100 %.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Predictor name.
    pub predictor: String,
    /// Accesses simulated.
    pub accesses: u64,
    /// Instructions represented by the trace (accesses + gaps).
    pub instructions: u64,
    /// Baseline L1D misses (= prediction opportunity).
    pub base_l1_misses: u64,
    /// L1D misses remaining with the predictor.
    pub pf_l1_misses: u64,
    /// Baseline L2 misses (off-chip accesses).
    pub base_l2_misses: u64,
    /// L2 misses remaining with the predictor.
    pub pf_l2_misses: u64,
    /// Baseline misses eliminated by the predictor (correct predictions).
    pub correct: u64,
    /// Wrong-target prefetches (counted against opportunity).
    pub incorrect: u64,
    /// Baseline hits that became misses with the predictor (early
    /// evictions).
    pub early: u64,
    /// Prefetch fills performed.
    pub prefetch_fills: u64,
    /// Prefetched blocks that were demand-used.
    pub useful_prefetches: u64,
    /// Predictor metadata traffic.
    pub traffic: PredictorTraffic,
    /// Cache-block bytes moved from memory by the baseline (fills +
    /// write-backs), for the Figure 12 utilization breakdown.
    pub base_data_bytes: u64,
    /// Extra cache-block bytes moved due to mispredicted prefetches.
    pub incorrect_prefetch_bytes: u64,
    /// Predictor on-chip storage (bytes, hardware model).
    pub storage_bytes: u64,
    /// Predictor resident simulator memory (bytes, honest count) — what
    /// budget-sweep figures compare exact tables and sketches on.
    pub memory_bytes: u64,
}

impl CoverageReport {
    /// Misses not predicted at all (training/low-confidence losses).
    pub fn train(&self) -> u64 {
        self.base_l1_misses.saturating_sub(self.correct + self.incorrect)
    }

    /// Fraction of opportunity eliminated (Figure 8 "correct").
    pub fn correct_pct(&self) -> f64 {
        self.pct(self.correct)
    }

    /// Fraction of opportunity lost to wrong targets (Figure 8 "incorrect").
    pub fn incorrect_pct(&self) -> f64 {
        self.pct(self.incorrect)
    }

    /// Fraction of opportunity lost to training (Figure 8 "train").
    pub fn train_pct(&self) -> f64 {
        self.pct(self.train())
    }

    /// Premature evictions as a fraction of opportunity (Figure 8 "early",
    /// plotted above 100 %).
    pub fn early_pct(&self) -> f64 {
        self.pct(self.early)
    }

    /// Coverage: fraction of baseline L1D misses eliminated.
    pub fn coverage(&self) -> f64 {
        if self.base_l1_misses == 0 {
            0.0
        } else {
            1.0 - self.pf_l1_misses as f64 / self.base_l1_misses as f64
        }
    }

    /// Fraction of baseline off-chip (L2) misses eliminated (Section 5.7).
    pub fn l2_coverage(&self) -> f64 {
        if self.base_l2_misses == 0 {
            0.0
        } else {
            1.0 - self.pf_l2_misses as f64 / self.base_l2_misses as f64
        }
    }

    /// Baseline L1D miss ratio (Table 2).
    pub fn base_l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.base_l1_misses as f64 / self.accesses as f64
        }
    }

    /// Baseline L2 *local* miss ratio — L2 misses over L2 accesses
    /// (Table 2's "L2 miss %").
    pub fn base_l2_miss_rate(&self) -> f64 {
        if self.base_l1_misses == 0 {
            0.0
        } else {
            self.base_l2_misses as f64 / self.base_l1_misses as f64
        }
    }

    fn pct(&self, v: u64) -> f64 {
        if self.base_l1_misses == 0 {
            0.0
        } else {
            v as f64 / self.base_l1_misses as f64
        }
    }
}

/// One `coverage.run` telemetry point summarizing a finished run. The
/// per-access loop stays uninstrumented — telemetry cost is per *run*,
/// which is what the bench report's telemetry-overhead delta documents.
fn emit_run_point(report: &CoverageReport) {
    if !ltc_telemetry::enabled() {
        return;
    }
    ltc_telemetry::point(
        "coverage.run",
        vec![
            ("predictor".to_string(), report.predictor.clone().into()),
            ("accesses".to_string(), report.accesses.into()),
            ("base_l1_misses".to_string(), report.base_l1_misses.into()),
            ("correct".to_string(), report.correct.into()),
            ("early".to_string(), report.early.into()),
        ],
    );
}

/// Runs a predictor against a shadow baseline on the same trace.
///
/// Per access, both hierarchies are stepped; the cross-classification of
/// (baseline, predictor) outcomes yields the Figure 8 categories exactly:
///
/// * baseline miss, predictor hit → an eliminated miss (*correct*),
/// * baseline hit, predictor miss → a predictor-induced *early* eviction,
/// * baseline miss, predictor miss → not eliminated; counted *incorrect*
///   when a wrong-target prefetch resolved uselessly, *train* otherwise.
///
/// Prefetch requests are applied immediately: the paper's Figure 2 shows
/// 85 % of dead times exceed the memory latency, so trace-driven prefetches
/// are assumed timely (the timing model charges real latencies instead).
pub fn run_coverage<S, P>(source: &mut S, predictor: &mut P, cfg: CoverageConfig) -> CoverageReport
where
    S: TraceSource,
    P: Prefetcher + ?Sized,
{
    // A passive predictor never prefetches, so its shadow hierarchy would
    // replay the baseline exactly: run the dedicated single-hierarchy loop
    // that also mirrors every (base, pf) pair of counters without stepping
    // or copying a second outcome. The report stays byte-identical (the
    // golden wall and `passive_fast_path_mirrors_two_hierarchy_run` assert
    // this); baseline runs cost one hierarchy instead of two.
    if predictor.is_passive() {
        let report = run_coverage_passive(source, predictor, cfg);
        emit_run_point(&report);
        return report;
    }
    let mut base = Hierarchy::new(cfg.hierarchy);
    let mut pf = Hierarchy::new(cfg.hierarchy);
    let mut report =
        CoverageReport { predictor: predictor.name().to_string(), ..Default::default() };
    let mut requests = Vec::new();
    let mut l1_fills = 0u64;
    let line_bytes = cfg.hierarchy.l1.line_bytes;
    let mut useless_l1_before = 0u64;
    let mut useless_l2_before = 0u64;
    let mut traffic_before = predictor.traffic();

    for access_no in 0..cfg.limit {
        let Some(a) = source.next_access() else { break };
        if access_no == cfg.warmup {
            // Reset statistics at the warm-up boundary; simulation state
            // (caches, predictor) carries over untouched.
            let name = std::mem::take(&mut report.predictor);
            report = CoverageReport { predictor: name, ..Default::default() };
            useless_l1_before = pf.l1().stats().useless_prefetches;
            useless_l2_before = pf.l2().stats().useless_prefetches;
            traffic_before = predictor.traffic();
        }
        let measuring = access_no >= cfg.warmup;
        if measuring {
            report.accesses += 1;
            report.instructions += a.instructions();
        }

        let base_out = base.access(a.addr, a.kind);
        let pf_out = pf.access(a.addr, a.kind);

        if measuring {
            // Figure 12 base-data accounting: every off-chip fill moves a
            // line.
            if base_out.level == MemLevel::Memory {
                report.base_data_bytes += line_bytes;
            }
            if base_out.l2_writeback {
                report.base_data_bytes += line_bytes;
            }

            match (base_out.l1.hit, pf_out.l1.hit) {
                (false, true) => report.correct += 1,
                (true, false) => report.early += 1,
                _ => {}
            }
            if !base_out.l1.hit {
                report.base_l1_misses += 1;
            }
            if !pf_out.l1.hit {
                report.pf_l1_misses += 1;
            }
            if base_out.level == MemLevel::Memory {
                report.base_l2_misses += 1;
            }
            if pf_out.level == MemLevel::Memory {
                report.pf_l2_misses += 1;
            }
            if pf_out.l1.first_use_of_prefetch {
                report.useful_prefetches += 1;
            }
        }

        predictor.on_access(&a, &pf_out, &mut requests);
        for req in requests.drain(..) {
            match req.level {
                PrefetchLevel::L1 => {
                    if pf.l1().contains(req.target) {
                        continue;
                    }
                    let (out, src) = pf.prefetch_into_l1(req.target, req.victim);
                    report.prefetch_fills += 1;
                    l1_fills += 1;
                    predictor.on_prefetch_applied(&req, &out, src);
                }
                PrefetchLevel::L2 => {
                    if pf.l2().contains(req.target) {
                        continue;
                    }
                    let (out, src) = pf.prefetch_into_l2(req.target);
                    report.prefetch_fills += 1;
                    predictor.on_prefetch_applied(&req, &out, src);
                }
            }
        }
    }

    // Wrong-target accounting. For L1 (last-touch) prefetchers the useless
    // L1 fills are the mispredictions; for L2-only prefetchers (GHB/stride)
    // the useless L2 fills are. An L1 prefetcher's pass-through L2 fills
    // would double count, so L2 uselessness is only charged when no L1
    // prefetching happened.
    let useless = if l1_fills > 0 {
        pf.l1().stats().useless_prefetches.saturating_sub(useless_l1_before)
    } else {
        pf.l2().stats().useless_prefetches.saturating_sub(useless_l2_before)
    };
    // Clamp so the Figure 8 identity (correct + incorrect + train = 100%)
    // holds even when useless prefetches outnumber unresolved misses.
    report.incorrect = useless.min(report.base_l1_misses.saturating_sub(report.correct));
    report.incorrect_prefetch_bytes = useless * line_bytes;
    let t = predictor.traffic();
    report.traffic = PredictorTraffic {
        sequence_write_bytes: t.sequence_write_bytes - traffic_before.sequence_write_bytes,
        sequence_read_bytes: t.sequence_read_bytes - traffic_before.sequence_read_bytes,
        confidence_update_bytes: t.confidence_update_bytes - traffic_before.confidence_update_bytes,
    };
    report.storage_bytes = predictor.storage_bytes();
    report.memory_bytes = predictor.memory_bytes();
    emit_run_point(&report);
    report
}

/// The single-hierarchy loop for passive predictors: the (base, pf)
/// outcome pair is always identical, so `correct`, `early`, and every
/// prefetch counter are structurally zero and each remaining pair of
/// counters mirrors the baseline. Must produce byte-for-byte the report
/// [`run_coverage`]'s two-hierarchy loop would.
fn run_coverage_passive<S, P>(
    source: &mut S,
    predictor: &mut P,
    cfg: CoverageConfig,
) -> CoverageReport
where
    S: TraceSource,
    P: Prefetcher + ?Sized,
{
    let mut base = Hierarchy::new(cfg.hierarchy);
    let mut report =
        CoverageReport { predictor: predictor.name().to_string(), ..Default::default() };
    let mut requests = Vec::new();
    let line_bytes = cfg.hierarchy.l1.line_bytes;
    let initial_traffic = predictor.traffic();

    // Warm-up prefix: state advances, nothing is counted. Splitting it
    // out keeps the measured loop free of per-access warm-up compares.
    for _ in 0..cfg.warmup.min(cfg.limit) {
        let Some(a) = source.next_access() else { break };
        let out = base.access(a.addr, a.kind);
        predictor.on_access(&a, &out, &mut requests);
        debug_assert!(
            requests.is_empty(),
            "passive predictor {} pushed a prefetch request",
            predictor.name()
        );
        requests.clear();
    }
    // The warm-up traffic baseline is re-captured only once the measured
    // phase actually begins (access #warmup exists), mirroring the
    // two-hierarchy loop's reset-at-the-boundary behaviour exactly.
    let mut traffic_before = initial_traffic;
    let mut pending_reset = cfg.warmup > 0;

    for _ in cfg.warmup.min(cfg.limit)..cfg.limit {
        let Some(a) = source.next_access() else { break };
        if pending_reset {
            traffic_before = predictor.traffic();
            pending_reset = false;
        }
        let out = base.access(a.addr, a.kind);
        report.accesses += 1;
        report.instructions += a.instructions();
        if out.level == MemLevel::Memory {
            report.base_data_bytes += line_bytes;
            report.base_l2_misses += 1;
            report.pf_l2_misses += 1;
        }
        if out.l2_writeback {
            report.base_data_bytes += line_bytes;
        }
        if !out.l1.hit {
            report.base_l1_misses += 1;
            report.pf_l1_misses += 1;
        }
        predictor.on_access(&a, &out, &mut requests);
        debug_assert!(
            requests.is_empty(),
            "passive predictor {} pushed a prefetch request",
            predictor.name()
        );
        requests.clear();
    }

    let t = predictor.traffic();
    report.traffic = PredictorTraffic {
        sequence_write_bytes: t.sequence_write_bytes - traffic_before.sequence_write_bytes,
        sequence_read_bytes: t.sequence_read_bytes - traffic_before.sequence_read_bytes,
        confidence_update_bytes: t.confidence_update_bytes - traffic_before.confidence_update_bytes,
    };
    report.storage_bytes = predictor.storage_bytes();
    report.memory_bytes = predictor.memory_bytes();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_predictors::{DbcpConfig, DbcpPrefetcher, NullPrefetcher};
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    fn conflict_loop(aliases: u64, sets: u64, passes: usize) -> Replay {
        let span = 512 * 64;
        let mut v = Vec::new();
        for _ in 0..passes {
            for set in 0..sets {
                for alias in 0..aliases {
                    v.push(MemoryAccess::load(
                        Pc(0x400 + alias * 8),
                        Addr(set * 64 + alias * span),
                    ));
                }
            }
        }
        Replay::once(v)
    }

    /// A NullPrefetcher that denies being passive, forcing the
    /// two-hierarchy slow path so the shadow-skip can be differenced.
    struct DeclaredActive(NullPrefetcher);

    impl Prefetcher for DeclaredActive {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn on_access(
            &mut self,
            access: &ltc_trace::MemoryAccess,
            outcome: &ltc_cache::HierarchyOutcome,
            out: &mut Vec<ltc_predictors::PrefetchRequest>,
        ) {
            self.0.on_access(access, outcome, out)
        }
        fn storage_bytes(&self) -> u64 {
            self.0.storage_bytes()
        }
    }

    /// The passive shadow-skip must be invisible in the report: running
    /// the baseline with and without the second hierarchy produces the
    /// exact same CoverageReport (the golden wall asserts the same at
    /// the engine level).
    #[test]
    fn passive_fast_path_mirrors_two_hierarchy_run() {
        let cfg = CoverageConfig::paper(u64::MAX).with_warmup(500);
        let fast = run_coverage(&mut conflict_loop(4, 64, 10), &mut NullPrefetcher::new(), cfg);
        let slow = run_coverage(
            &mut conflict_loop(4, 64, 10),
            &mut DeclaredActive(NullPrefetcher::new()),
            cfg,
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn null_predictor_reports_zero_coverage() {
        let mut t = conflict_loop(4, 32, 10);
        let mut p = NullPrefetcher::new();
        let r = run_coverage(&mut t, &mut p, CoverageConfig::paper(u64::MAX));
        assert_eq!(r.base_l1_misses, r.pf_l1_misses);
        assert_eq!(r.correct, 0);
        assert_eq!(r.early, 0);
        assert_eq!(r.train(), r.base_l1_misses);
        assert!((r.coverage()).abs() < 1e-12);
    }

    #[test]
    fn dbcp_unlimited_covers_recurring_loop() {
        let mut t = conflict_loop(4, 64, 30);
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let r = run_coverage(&mut t, &mut p, CoverageConfig::paper(u64::MAX));
        assert!(r.base_l1_misses > 0);
        assert!(
            r.coverage() > 0.3,
            "DBCP should eliminate a chunk of recurring misses, got {}",
            r.coverage()
        );
        assert_eq!(
            r.correct + r.incorrect + r.train(),
            r.base_l1_misses,
            "Figure 8 identity must hold"
        );
    }

    #[test]
    fn coverage_matches_miss_delta_modulo_early() {
        let mut t = conflict_loop(4, 64, 20);
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let r = run_coverage(&mut t, &mut p, CoverageConfig::paper(u64::MAX));
        // pf misses = base misses - eliminated + early.
        assert_eq!(r.pf_l1_misses, r.base_l1_misses - r.correct + r.early);
    }

    #[test]
    fn report_percentages_are_consistent() {
        let mut t = conflict_loop(4, 32, 15);
        let mut p = DbcpPrefetcher::new(DbcpConfig::unlimited());
        let r = run_coverage(&mut t, &mut p, CoverageConfig::paper(u64::MAX));
        let sum = r.correct_pct() + r.incorrect_pct() + r.train_pct();
        assert!((sum - 1.0).abs() < 1e-9, "percentages must sum to 100%: {sum}");
    }

    #[test]
    fn limit_bounds_the_run() {
        let mut t = conflict_loop(2, 16, 100);
        let mut p = NullPrefetcher::new();
        let r = run_coverage(&mut t, &mut p, CoverageConfig::paper(500));
        assert_eq!(r.accesses, 500);
    }
}
