//! Logarithmic histograms and CDFs for the paper's distribution figures.

use serde::{Deserialize, Serialize};

/// A histogram over power-of-two buckets: bucket *k* covers values in
/// `[2^(k-1)+1, 2^k]` (bucket 0 holds exactly the value 0, bucket 1 holds 1).
///
/// All the paper's distribution plots (Figures 2, 6, 7) use log-scaled x
/// axes, so this is the shared representation.
///
/// # Example
///
/// ```
/// use ltc_analysis::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(1);
/// h.record(3);
/// h.record(1000);
/// assert_eq!(h.total(), 3);
/// // Two of three samples are <= 4.
/// assert!((h.cdf_at(4) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: vec![0; 65], total: 0 }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Upper bound of bucket `k`.
    pub fn bucket_bound(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            1u64 << (k - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[Self::bucket_of(value)] += n;
        self.total += n;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of samples with value `<= bound` (bucket-granular: `bound`
    /// is rounded up to its bucket's upper edge).
    pub fn cdf_at(&self, bound: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let k = Self::bucket_of(bound);
        let cum: u64 = self.buckets[..=k].iter().sum();
        cum as f64 / self.total as f64
    }

    /// The full CDF as `(bucket upper bound, cumulative fraction)` pairs,
    /// ending at the last non-empty bucket.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let last = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for k in 0..=last {
            cum += self.buckets[k];
            out.push((Self::bucket_bound(k), cum as f64 / self.total as f64));
        }
        out
    }

    /// Smallest bucket bound at which the CDF reaches `p` (0..=1).
    pub fn quantile(&self, p: f64) -> u64 {
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if self.total > 0 && cum as f64 / self.total as f64 >= p {
                return Self::bucket_bound(k);
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_edges() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = LogHistogram::new();
        for v in [1u64, 5, 9, 200, 10_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_matches_cdf() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(4);
        }
        for _ in 0..10 {
            h.record(1 << 20);
        }
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.95), 1 << 20);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.cdf_at(100), 0.0);
        assert!(h.cdf().is_empty());
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(2);
        b.record(2);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.cdf_at(2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_weights_bucket() {
        let mut h = LogHistogram::new();
        h.record_n(8, 5);
        assert_eq!(h.total(), 5);
        assert!((h.cdf_at(8) - 1.0).abs() < 1e-12);
    }
}
