//! Temporal correlation distance of cache misses (Section 5.1, Figure 6).

use std::collections::HashMap;

use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_trace::{Addr, Pc, TraceSource};
use serde::{Deserialize, Serialize};

use crate::cdf::LogHistogram;

/// A cache-miss label per the paper's footnote 1: `(miss PC, miss block
/// address, evicted block address)`; the previous occurrence of a miss is
/// the nearest preceding miss with the same label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MissLabel {
    pc: Pc,
    block: Addr,
    evicted: Addr,
}

/// Results of the temporal-correlation study over one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorrelationAnalysis {
    /// Histogram of absolute temporal correlation distances (Figure 6 left).
    pub distances: LogHistogram,
    /// Misses whose label (or predecessor's) had no previous occurrence.
    pub uncorrelated: u64,
    /// Total misses observed.
    pub misses: u64,
    /// Misses with perfect (+1) correlation.
    pub perfect: u64,
    /// Lengths of runs of correlated misses (Figure 6 right).
    pub sequence_lengths: SequenceLengths,
}

/// Correlated-sequence length accounting (Figure 6 right): consecutive
/// misses whose absolute correlation distance stays within ±`window` form a
/// sequence; each sequence contributes its length, weighted by length, to
/// the histogram (the figure plots the CDF of *correlated misses* by the
/// length of the sequence they belong to).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceLengths {
    /// Maximum |distance| treated as "correlated" (the paper uses ±16).
    pub window: u64,
    /// Histogram of sequence lengths, weighted by length.
    pub lengths: LogHistogram,
    current_run: u64,
}

impl Default for SequenceLengths {
    fn default() -> Self {
        SequenceLengths { window: 16, lengths: LogHistogram::new(), current_run: 0 }
    }
}

impl SequenceLengths {
    fn observe(&mut self, correlated: bool) {
        if correlated {
            self.current_run += 1;
        } else {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.current_run > 0 {
            self.lengths.record_n(self.current_run, self.current_run);
            self.current_run = 0;
        }
    }
}

impl CorrelationAnalysis {
    /// Runs the study: simulates the baseline L1D over up to `limit`
    /// accesses and computes the correlation distance of every miss.
    ///
    /// The distance between consecutive misses `A` then `B` is
    /// `pos(prev occurrence of B) - pos(prev occurrence of A)`: +1 means the
    /// pair recurred in identical order, -1 means it recurred reversed.
    pub fn run<S: TraceSource>(source: &mut S, limit: u64) -> Self {
        let mut analysis = CorrelationAnalysis::default();
        let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
        // label -> last position in the miss sequence.
        let mut last_pos: HashMap<MissLabel, u64> = HashMap::new();
        let mut miss_index = 0u64;
        // Previous occurrence (before its own last) of the predecessor miss.
        let mut prev_miss_old_pos: Option<u64> = None;
        let mut prev_seen = false;

        for _ in 0..limit {
            let Some(a) = source.next_access() else { break };
            let out = hierarchy.access(a.addr, a.kind);
            if out.l1.hit {
                continue;
            }
            let label = MissLabel {
                pc: a.pc,
                block: a.addr.line(64),
                evicted: out.l1.evicted.map(|e| e.addr).unwrap_or(Addr(0)),
            };
            analysis.misses += 1;
            let this_old_pos = last_pos.insert(label, miss_index);
            if prev_seen {
                match (prev_miss_old_pos, this_old_pos) {
                    (Some(pa), Some(pb)) => {
                        let d = pb as i64 - pa as i64;
                        analysis.distances.record(d.unsigned_abs().max(1));
                        analysis.perfect += u64::from(d == 1);
                        analysis
                            .sequence_lengths
                            .observe(d.unsigned_abs() <= analysis.sequence_lengths.window);
                    }
                    _ => {
                        analysis.uncorrelated += 1;
                        analysis.sequence_lengths.observe(false);
                    }
                }
            } else {
                analysis.uncorrelated += 1;
            }
            prev_miss_old_pos = this_old_pos;
            prev_seen = true;
            miss_index += 1;
        }
        analysis.sequence_lengths.flush();
        analysis
    }

    /// Fraction of all misses with |distance| ≤ `bound` (the Figure 6 left
    /// y axis; uncorrelated misses never enter the CDF, so it saturates
    /// below 1 for hash-driven codes).
    pub fn cdf_at(&self, bound: u64) -> f64 {
        if self.misses == 0 {
            return 0.0;
        }
        let within = self.distances.cdf_at(bound) * self.distances.total() as f64;
        within / self.misses as f64
    }

    /// Fraction of misses with perfect (+1) correlation.
    pub fn perfect_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.perfect as f64 / self.misses as f64
        }
    }

    /// Fraction of misses that had any previous occurrence.
    pub fn correlated_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            1.0 - self.uncorrelated as f64 / self.misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::{MemoryAccess, Replay};

    /// A trace looping over `n` distinct lines (every access misses once the
    /// lines conflict, and the miss order repeats exactly).
    fn looping_trace(n: u64, passes: usize) -> Replay {
        let mut v = Vec::new();
        for _ in 0..passes {
            for i in 0..n {
                // Large spacing so every line conflicts in the L1 set space.
                v.push(MemoryAccess::load(Pc(0x400), Addr(i * 512 * 64 * 4)));
            }
        }
        Replay::once(v)
    }

    #[test]
    fn repeating_misses_are_perfectly_correlated() {
        let mut t = looping_trace(64, 20);
        let a = CorrelationAnalysis::run(&mut t, u64::MAX);
        assert!(a.misses > 64 * 19, "every access should miss");
        assert!(
            a.perfect_fraction() > 0.8,
            "repeating loop should be nearly perfectly correlated, got {}",
            a.perfect_fraction()
        );
    }

    #[test]
    fn random_misses_are_uncorrelated() {
        let mut v = Vec::new();
        let mut x = 99u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push(MemoryAccess::load(Pc(0x1), Addr((x >> 16) & 0x7fff_ffc0)));
        }
        let mut t = Replay::once(v);
        let a = CorrelationAnalysis::run(&mut t, u64::MAX);
        assert!(a.misses > 1000);
        assert!(
            a.correlated_fraction() < 0.2,
            "random misses should be uncorrelated, got {}",
            a.correlated_fraction()
        );
    }

    #[test]
    fn reversal_yields_distance_one_not_perfect() {
        // Pattern: A B ... B A — the pair (B, A) recurs reversed (d = -1).
        // Use 4 conflicting groups so every access misses.
        let span = 512 * 64 * 4;
        let seq = [0u64, 1, 2, 3, 0, 1, 3, 2, 0, 1, 2, 3, 0, 1, 3, 2];
        let v: Vec<_> = seq
            .iter()
            .cycle()
            .take(seq.len() * 10)
            .map(|&i| MemoryAccess::load(Pc(0x1), Addr(i * span)))
            .collect();
        let mut t = Replay::once(v);
        let a = CorrelationAnalysis::run(&mut t, u64::MAX);
        // Still strongly correlated at |d| <= 2 even though not all +1.
        assert!(a.cdf_at(4) > 0.7, "local reorder stays near distance 1");
    }

    #[test]
    fn sequence_lengths_track_run_length() {
        let mut t = looping_trace(256, 10);
        let a = CorrelationAnalysis::run(&mut t, u64::MAX);
        // One long correlated run: the p50 sequence length must be large.
        assert!(a.sequence_lengths.lengths.quantile(0.5) >= 256);
    }

    #[test]
    fn empty_trace_is_safe() {
        let mut t = Replay::once(vec![]);
        let a = CorrelationAnalysis::run(&mut t, 100);
        assert_eq!(a.misses, 0);
        assert_eq!(a.cdf_at(16), 0.0);
    }
}
