//! Last-touch vs cache-miss order disparity (Section 5.2, Figure 7).

use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_trace::TraceSource;
use serde::{Deserialize, Serialize};

use crate::cdf::LogHistogram;

/// Measures how far the order of last touches diverges from the order of
/// the corresponding cache misses.
///
/// LT-cords records signatures in *miss order* but consumes them in
/// *last-touch order*; Figure 7 quantifies the reordering the signature
/// cache must absorb (up to ~1 K signatures for 98 % of misses).
///
/// Methodology: every miss that evicts a block defines a pair
/// `(miss position, last-touch position of the evicted block)`. Sorting
/// these pairs by last-touch position gives the last-touch order; the
/// distance recorded for each consecutive pair in that order is the
/// difference of their miss positions (+1 = the misses happened in the same
/// order, adjacent).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LastTouchOrderAnalysis {
    /// Histogram of |last-touch to miss correlation distance|.
    pub distances: LogHistogram,
    /// Misses with distance exactly +1 (perfectly ordered).
    pub perfect: u64,
    /// Total evicting misses analysed.
    pub misses: u64,
}

impl LastTouchOrderAnalysis {
    /// Runs the study over up to `limit` accesses.
    pub fn run<S: TraceSource>(source: &mut S, limit: u64) -> Self {
        let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
        // (last-touch seq of the evicted block, miss index).
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut miss_index = 0u64;
        for _ in 0..limit {
            let Some(a) = source.next_access() else { break };
            let out = hierarchy.access(a.addr, a.kind);
            if out.l1.hit {
                continue;
            }
            if let Some(ev) = out.l1.evicted {
                pairs.push((ev.last_touch_seq, miss_index));
            }
            miss_index += 1;
        }
        Self::from_pairs(pairs)
    }

    /// Computes the distances from raw `(last_touch_seq, miss_index)` pairs.
    pub fn from_pairs(mut pairs: Vec<(u64, u64)>) -> Self {
        let mut analysis =
            LastTouchOrderAnalysis { misses: pairs.len() as u64, ..Default::default() };
        pairs.sort_unstable_by_key(|&(lt, _)| lt);
        for w in pairs.windows(2) {
            let d = w[1].1 as i64 - w[0].1 as i64;
            analysis.distances.record(d.unsigned_abs().max(1));
            analysis.perfect += u64::from(d == 1);
        }
        analysis
    }

    /// Fraction of misses with |distance| ≤ `bound`.
    pub fn cdf_at(&self, bound: u64) -> f64 {
        self.distances.cdf_at(bound)
    }

    /// Fraction of perfectly ordered (distance +1) misses.
    pub fn perfect_fraction(&self) -> f64 {
        let total = self.distances.total();
        if total == 0 {
            0.0
        } else {
            self.perfect as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    #[test]
    fn single_stream_is_perfectly_ordered() {
        // One block per set, each touched exactly once, cycling: last-touch
        // order == miss order.
        let span = 512 * 64 * 4;
        let mut v = Vec::new();
        for _ in 0..10 {
            for i in 0..64u64 {
                v.push(MemoryAccess::load(Pc(0x1), Addr(i * span)));
            }
        }
        let mut t = Replay::once(v);
        let a = LastTouchOrderAnalysis::run(&mut t, u64::MAX);
        assert!(a.misses > 0);
        assert!(
            a.perfect_fraction() > 0.9,
            "single stream should be ordered, got {}",
            a.perfect_fraction()
        );
    }

    #[test]
    fn interleaved_sets_create_local_reorder() {
        // Two interleaved conflict streams in different sets, with accesses
        // arranged so last touches and misses swap order between the sets:
        // {A1, B1, B2, A2} from Section 3.2.
        let set_a = 0u64;
        let set_b = 64u64;
        let span = 512 * 64;
        let mut v = Vec::new();
        for round in 0..200u64 {
            // Touch A's current block, then B's current block, then miss B,
            // then miss A: last touches (A, B) but misses (B, A).
            let a_cur = set_a + (round % 8) * span;
            let b_cur = set_b + (round % 8) * span;
            let a_next = set_a + ((round + 1) % 8) * span;
            let b_next = set_b + ((round + 1) % 8) * span;
            v.push(MemoryAccess::load(Pc(1), Addr(a_cur)));
            v.push(MemoryAccess::load(Pc(2), Addr(b_cur)));
            v.push(MemoryAccess::load(Pc(3), Addr(b_next)));
            v.push(MemoryAccess::load(Pc(4), Addr(a_next)));
        }
        let mut t = Replay::once(v);
        let a = LastTouchOrderAnalysis::run(&mut t, u64::MAX);
        assert!(a.misses > 100);
        assert!(a.perfect_fraction() < 0.9, "reordering must be visible");
        assert!(a.cdf_at(8) > 0.95, "but it is local (small distances)");
    }

    #[test]
    fn from_pairs_handles_reversal() {
        // Last touches in order 10,20 but misses at positions 5,4 (reversed).
        let a = LastTouchOrderAnalysis::from_pairs(vec![(10, 5), (20, 4)]);
        assert_eq!(a.perfect, 0);
        assert_eq!(a.distances.total(), 1);
        assert!(a.cdf_at(1) > 0.99, "|d| = 1");
    }

    #[test]
    fn empty_input_is_safe() {
        let a = LastTouchOrderAnalysis::from_pairs(vec![]);
        assert_eq!(a.misses, 0);
        assert_eq!(a.perfect_fraction(), 0.0);
    }
}
