//! Cache-block dead-time measurement (Figure 2).

use std::collections::HashMap;

use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_trace::TraceSource;
use serde::{Deserialize, Serialize};

use crate::cdf::LogHistogram;

/// Measures block dead times: the interval between a block's last touch and
/// its eviction (Figure 2 plots the CDF in cycles and notes that over 85 %
/// of dead times exceed the memory access latency, which is what gives
/// last-touch prefetching its lookahead).
///
/// Dead times are recorded in *instructions* (accesses plus their gaps);
/// EXPERIMENTS.md converts to cycles using each benchmark's measured
/// baseline IPC when reproducing the figure's memory-latency marker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeadTimeTracker {
    /// Histogram of dead times in instructions.
    pub dead_times: LogHistogram,
    /// Evictions measured.
    pub evictions: u64,
}

impl DeadTimeTracker {
    /// Runs the baseline hierarchy over up to `limit` accesses, measuring
    /// L1D dead times.
    pub fn run<S: TraceSource>(source: &mut S, limit: u64) -> Self {
        let mut tracker = DeadTimeTracker::default();
        let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
        // line -> instruction count at its most recent touch.
        let mut last_touch: HashMap<u64, u64> = HashMap::new();
        let mut instructions = 0u64;
        for _ in 0..limit {
            let Some(a) = source.next_access() else { break };
            instructions += a.instructions();
            let out = hierarchy.access(a.addr, a.kind);
            let line = a.addr.line(64).0;
            if let Some(ev) = out.l1.evicted {
                if let Some(t) = last_touch.remove(&ev.addr.0) {
                    tracker.dead_times.record(instructions - t);
                    tracker.evictions += 1;
                }
            }
            last_touch.insert(line, instructions);
        }
        tracker
    }

    /// Fraction of dead times longer than `bound` instructions.
    pub fn fraction_longer_than(&self, bound: u64) -> f64 {
        1.0 - self.dead_times.cdf_at(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    #[test]
    fn streaming_blocks_have_long_dead_times() {
        // A long streaming loop: each block is touched once and then sits
        // dead until the loop wraps into its set again.
        let mut v = Vec::new();
        for _ in 0..4 {
            for i in 0..4096u64 {
                v.push(MemoryAccess::load(Pc(1), Addr(i * 64)).with_gap(3));
            }
        }
        let mut t = Replay::once(v);
        let d = DeadTimeTracker::run(&mut t, u64::MAX);
        assert!(d.evictions > 1000);
        // Dead time ~ one full pass (4096 * 4 instructions); far above 200.
        assert!(
            d.fraction_longer_than(200) > 0.85,
            "dead times should dwarf the memory latency, got {}",
            d.fraction_longer_than(200)
        );
    }

    #[test]
    fn hot_blocks_die_quickly() {
        // Blocks re-touched right up to eviction: conflict misses in one set
        // with immediate re-access give short dead times.
        let span = 512 * 64;
        let mut v = Vec::new();
        for round in 0..500u64 {
            for alias in 0..3u64 {
                let addr = Addr((round % 2) * 64 + alias * span);
                v.push(MemoryAccess::load(Pc(1), Addr(addr.0)));
            }
        }
        let mut t = Replay::once(v);
        let d = DeadTimeTracker::run(&mut t, u64::MAX);
        assert!(d.evictions > 100);
        assert!(d.dead_times.quantile(0.5) <= 16, "rotation is tight");
    }

    #[test]
    fn empty_trace_is_safe() {
        let mut t = Replay::once(vec![]);
        let d = DeadTimeTracker::run(&mut t, 10);
        assert_eq!(d.evictions, 0);
        assert_eq!(d.fraction_longer_than(100), 1.0);
    }
}
