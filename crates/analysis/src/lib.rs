//! Trace analysis: coverage accounting and the paper's correlation metrics.
//!
//! This crate hosts the measurement machinery behind the paper's evaluation:
//!
//! * [`coverage`] — the trace-driven coverage simulator: a predictor-driven
//!   hierarchy run in lockstep with a shadow baseline hierarchy, classifying
//!   every baseline miss as *correct* (eliminated), *incorrect* (mispredicted
//!   replacement), or *train* (no prediction), plus predictor-induced *early*
//!   evictions (Figure 8's methodology).
//! * [`correlation`] — the temporal correlation distance metric of
//!   Section 5.1 (Figure 6 left) and correlated-sequence lengths (Figure 6
//!   right).
//! * [`lasttouch_order`] — the last-touch vs cache-miss order disparity of
//!   Section 5.2 (Figure 7).
//! * [`deadtime`] — block dead-time measurement (Figure 2).
//! * [`stream`] — the bounded-memory one-pass miss/heavy-hitter analysis
//!   built on the `ltc_stream` summaries (`ltsim stream`).
//! * [`cdf`] — logarithmic histograms and CDF helpers shared by the above.

pub mod cdf;
pub mod correlation;
pub mod coverage;
pub mod deadtime;
pub mod lasttouch_order;
pub mod stream;

pub use cdf::LogHistogram;
pub use correlation::{CorrelationAnalysis, SequenceLengths};
pub use coverage::{run_coverage, CoverageConfig, CoverageReport};
pub use deadtime::DeadTimeTracker;
pub use lasttouch_order::LastTouchOrderAnalysis;
pub use stream::{
    merge_partials, StreamAnalysis, StreamConfig, StreamPartial, StreamReport, WarmImage,
    SEGMENT_WARMUP,
};
