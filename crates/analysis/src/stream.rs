//! One-pass bounded-memory miss analysis (`ltsim stream`).
//!
//! Replays a trace through the baseline hierarchy exactly once and mines
//! the L1D miss stream with the `ltc_stream` summaries instead of exact
//! tables: a [`SpaceSaving`] summary of heavy-hitter miss lines and a
//! [`ChhSummary`] of correlated `(last miss → next miss)` pairs — the
//! streamed form of the last-touch correlation data the exact analyses
//! materialize in full. Resident summary memory is bounded by the
//! configured byte budget regardless of trace length, which is the
//! property that lets this analysis serve traces the exact tables cannot.

use ltc_cache::{Hierarchy, HierarchyConfig};
use ltc_stream::{ChhConfig, ChhSummary, SpaceSaving};
use ltc_trace::TraceSource;
use serde::{Deserialize, Serialize};

/// Configuration of a [`StreamAnalysis`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Total byte budget across both summaries (half each).
    pub budget_bytes: u64,
    /// Hash seed for the pair sketch (engine runs pass the trace seed so
    /// the `RunSpec` fully determines the report).
    pub seed: u64,
}

/// Heavy hitters reported per summary (fixed so the report — and with it
/// the artifact format — does not depend on presentation flags).
pub const REPORT_TOP: usize = 8;

impl StreamConfig {
    /// A run with the given summary budget.
    pub fn with_budget(budget_bytes: u64) -> Self {
        StreamConfig { budget_bytes, seed: 1 }
    }

    /// Same budget, explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One heavy-hitter miss line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyLine {
    /// Line address.
    pub line: u64,
    /// Estimated miss count (never below the true count).
    pub estimate: u64,
    /// Upper bound on the estimate's overshoot.
    pub overestimate: u64,
}

/// One correlated miss transition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelatedMiss {
    /// The miss line acting as the correlation key.
    pub last_line: u64,
    /// The line whose miss follows it.
    pub next_line: u64,
    /// Estimated pair count.
    pub estimate: u64,
    /// Estimated occurrences of the key line among misses.
    pub key_estimate: u64,
}

/// Result of a one-pass streaming miss analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Accesses replayed.
    pub accesses: u64,
    /// Baseline L1D misses observed.
    pub misses: u64,
    /// Configured summary budget (bytes).
    pub budget_bytes: u64,
    /// Resident summary memory at end of run (bytes, ≤ budget).
    pub memory_bytes: u64,
    /// The ε·N guarantee on heavy-hitter estimates: any line's estimate
    /// is within this many misses of its true count.
    pub error_bound: u64,
    /// Top heavy-hitter miss lines, most frequent first.
    pub heavy: Vec<HeavyLine>,
    /// Strongest correlated miss transitions, most frequent first.
    pub correlated: Vec<CorrelatedMiss>,
}

impl StreamReport {
    /// Baseline L1D miss ratio.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of all misses attributed to the reported heavy hitters
    /// (by estimate, so it can slightly overcount).
    pub fn heavy_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            let sum: u64 = self.heavy.iter().map(|h| h.estimate).sum();
            sum as f64 / self.misses as f64
        }
    }
}

/// The one-pass analysis driver.
#[derive(Debug)]
pub struct StreamAnalysis;

impl StreamAnalysis {
    /// Replays up to `limit` accesses from `source` and summarizes the
    /// miss stream within `cfg.budget_bytes` of summary memory.
    pub fn run<S: TraceSource + ?Sized>(
        source: &mut S,
        limit: u64,
        cfg: StreamConfig,
    ) -> StreamReport {
        let mut hierarchy = Hierarchy::new(HierarchyConfig::paper());
        let mut heavy = SpaceSaving::with_budget(cfg.budget_bytes / 2);
        let mut pairs =
            ChhSummary::new(ChhConfig::with_budget(cfg.budget_bytes / 2).with_seed(cfg.seed));
        let mut report = StreamReport { budget_bytes: cfg.budget_bytes, ..StreamReport::default() };
        let mut last_miss: Option<u64> = None;

        for _ in 0..limit {
            let Some(a) = source.next_access() else { break };
            report.accesses += 1;
            let out = hierarchy.access(a.addr, a.kind);
            if out.l1.hit {
                continue;
            }
            report.misses += 1;
            let line = a.addr.line(64).0;
            heavy.observe(line);
            if let Some(prev) = last_miss {
                pairs.observe(prev, line);
            }
            last_miss = Some(line);
        }

        report.memory_bytes = heavy.memory_bytes() + pairs.memory_bytes();
        report.error_bound = heavy.max_error();
        report.heavy = heavy
            .top()
            .into_iter()
            .take(REPORT_TOP)
            .map(|(line, e)| HeavyLine { line, estimate: e.count, overestimate: e.overestimate })
            .collect();

        // Rank every monitored (key → value) transition by pair estimate.
        let mut correlated: Vec<CorrelatedMiss> = Vec::new();
        for (key, key_est) in pairs.key_estimates() {
            for p in pairs.correlated(key).unwrap_or_default() {
                correlated.push(CorrelatedMiss {
                    last_line: key,
                    next_line: p.value,
                    estimate: p.estimate,
                    key_estimate: key_est.count,
                });
            }
        }
        correlated.sort_by_key(|c| (std::cmp::Reverse(c.estimate), c.last_line, c.next_line));
        correlated.truncate(REPORT_TOP);
        report.correlated = correlated;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    /// A recurring conflict loop whose misses alternate over a fixed line
    /// cycle, so the transition structure is fully predictable.
    fn conflict_loop(aliases: u64, passes: usize) -> Replay {
        let span = 512 * 64;
        let mut v = Vec::new();
        for _ in 0..passes {
            for alias in 0..aliases {
                v.push(MemoryAccess::load(Pc(0x400 + alias * 8), Addr(alias * span)));
            }
        }
        Replay::once(v)
    }

    #[test]
    fn finds_the_recurring_miss_cycle() {
        let mut t = conflict_loop(4, 200);
        let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(64 << 10));
        assert_eq!(r.accesses, 800);
        assert!(r.misses >= 790, "4 aliases in a 2-way set miss every time");
        assert_eq!(r.heavy.len(), 4, "exactly four lines miss");
        assert!(r.heavy_fraction() > 0.95, "the cycle is the whole miss stream");
        // Every transition in the cycle is a -> a+span (mod 4 aliases).
        let span = 512 * 64;
        let top = &r.correlated[0];
        assert_eq!((top.next_line + 4 * span - top.last_line) % (4 * span), span);
        assert!(top.estimate > 100);
    }

    #[test]
    fn memory_bounded_for_any_trace_length() {
        let budget = 32 << 10;
        for passes in [50usize, 2000] {
            let mut t = conflict_loop(8, passes);
            let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(budget));
            assert!(
                r.memory_bytes <= budget,
                "resident {} exceeds budget {budget} at {passes} passes",
                r.memory_bytes
            );
        }
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut t = conflict_loop(4, 50);
        let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(32 << 10));
        let json = serde_json::to_string(&r);
        let parsed: StreamReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = StreamConfig::with_budget(32 << 10).with_seed(7);
        let mut a = conflict_loop(6, 100);
        let mut b = conflict_loop(6, 100);
        let ra = StreamAnalysis::run(&mut a, u64::MAX, cfg);
        let rb = StreamAnalysis::run(&mut b, u64::MAX, cfg);
        assert_eq!(ra, rb);
    }
}
