//! One-pass bounded-memory miss analysis (`ltsim stream`).
//!
//! Replays a trace through the baseline hierarchy exactly once and mines
//! the L1D miss stream with the `ltc_stream` summaries instead of exact
//! tables: a [`SpaceSaving`] summary of heavy-hitter miss lines and a
//! [`ChhSummary`] of correlated `(last miss → next miss)` pairs — the
//! streamed form of the last-touch correlation data the exact analyses
//! materialize in full. Resident summary memory is bounded by the
//! configured byte budget regardless of trace length, which is the
//! property that lets this analysis serve traces the exact tables cannot.

use ltc_cache::{Hierarchy, HierarchyConfig, HierarchyImage};
use ltc_stream::{ChhConfig, ChhState, ChhSummary, MergeError, SpaceSaving, SpaceSavingState};
use ltc_trace::{Checkpoint, TraceSegment, TraceSource};
use serde::{Deserialize, Serialize};

/// Configuration of a [`StreamAnalysis`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Total byte budget across both summaries (half each).
    pub budget_bytes: u64,
    /// Hash seed for the pair sketch (engine runs pass the trace seed so
    /// the `RunSpec` fully determines the report).
    pub seed: u64,
    /// Uncounted accesses a segment worker replays through its hierarchy
    /// before its slice begins (defaults to [`SEGMENT_WARMUP`]). Changing
    /// it changes segmented results, so engine runs key their artifact
    /// cache on it.
    pub warmup: u64,
    /// Misses between sketch-occupancy telemetry samples (defaults to
    /// [`SKETCH_SAMPLE_EVERY`]; 0 disables periodic sampling). Telemetry
    /// only — never affects the report, so it is deliberately **not**
    /// part of any artifact cache key.
    pub sample_every: u64,
}

/// Heavy hitters reported per summary (fixed so the report — and with it
/// the artifact format — does not depend on presentation flags).
pub const REPORT_TOP: usize = 8;

/// Default for [`StreamConfig::warmup`]: uncounted accesses a segment
/// worker replays through its hierarchy before its slice begins, so the
/// cache state at the boundary approximates the single-pass state (the
/// classic warm-up of sampled simulation). Sized to refill the paper
/// hierarchy's ~32 K L2 lines a few times over for any access pattern
/// the suite generates; slices starting within this window warm on
/// their whole prefix and match the single pass exactly. The engine
/// keys segmented artifacts on the configured warm-up, so a run with a
/// non-default value caches separately instead of colliding.
pub const SEGMENT_WARMUP: u64 = 150_000;

/// Default for [`StreamConfig::sample_every`]: misses between the
/// sketch-occupancy gauge samples the stream loop emits when telemetry
/// is enabled. Occupancy scans are O(sketch size), so the interval
/// keeps sampling cost far below the replay itself; one final sample is
/// always emitted per segment regardless.
pub const SKETCH_SAMPLE_EVERY: u64 = 65_536;

impl StreamConfig {
    /// A run with the given summary budget.
    pub fn with_budget(budget_bytes: u64) -> Self {
        StreamConfig {
            budget_bytes,
            seed: 1,
            warmup: SEGMENT_WARMUP,
            sample_every: SKETCH_SAMPLE_EVERY,
        }
    }

    /// Same budget, explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same budget, explicit segment warm-up length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Same budget, explicit sketch-telemetry sampling interval
    /// (0 disables periodic samples).
    pub fn with_sample_every(mut self, sample_every: u64) -> Self {
        self.sample_every = sample_every;
        self
    }
}

/// A warm hierarchy image pinned to a trace position: the serialized
/// cache state a single-pass replay reaches right before access `pos`.
///
/// Recorded once per (benchmark, seed, warm-up) by the engine's
/// checkpoint pre-pass and handed to segment workers, it replaces the
/// [`StreamConfig::warmup`]-access warm-up replay in
/// [`StreamAnalysis::run_segment_with`]: restoring the image yields the
/// byte-identical hierarchy the replay would have built, for O(1) work
/// instead of O(warm-up) simulated accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmImage {
    /// The trace position the image is warm *for*: the worker's slice
    /// must start exactly here for the image to apply.
    pub pos: u64,
    /// The hierarchy state after replaying the warm-up window ending at
    /// `pos`.
    pub image: HierarchyImage,
}

/// One heavy-hitter miss line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyLine {
    /// Line address.
    pub line: u64,
    /// Estimated miss count (never below the true count).
    pub estimate: u64,
    /// Upper bound on the estimate's overshoot.
    pub overestimate: u64,
}

/// One correlated miss transition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelatedMiss {
    /// The miss line acting as the correlation key.
    pub last_line: u64,
    /// The line whose miss follows it.
    pub next_line: u64,
    /// Estimated pair count.
    pub estimate: u64,
    /// Estimated occurrences of the key line among misses.
    pub key_estimate: u64,
}

/// Result of a one-pass streaming miss analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Accesses replayed.
    pub accesses: u64,
    /// Baseline L1D misses observed.
    pub misses: u64,
    /// Configured summary budget (bytes).
    pub budget_bytes: u64,
    /// Resident summary memory at end of run (bytes, ≤ budget).
    pub memory_bytes: u64,
    /// The ε·N guarantee on heavy-hitter estimates: any line's estimate
    /// is within this many misses of its true count.
    pub error_bound: u64,
    /// Top heavy-hitter miss lines, most frequent first.
    pub heavy: Vec<HeavyLine>,
    /// Strongest correlated miss transitions, most frequent first.
    pub correlated: Vec<CorrelatedMiss>,
}

impl StreamReport {
    /// Baseline L1D miss ratio.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of all misses attributed to the reported heavy hitters
    /// (by estimate, so it can slightly overcount).
    pub fn heavy_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            let sum: u64 = self.heavy.iter().map(|h| h.estimate).sum();
            sum as f64 / self.misses as f64
        }
    }
}

/// One worker's summary of one trace segment: the serializable sketch
/// states plus the counts and boundary misses the reduce step needs.
///
/// This is the unit that crosses the worker protocol in segmented runs
/// (`ltsim stream --segments N`): each worker replays only its
/// [`TraceSegment`] and returns a `StreamPartial`;
/// [`merge_partials`] combines them — in segment order — into the same
/// [`StreamReport`] shape a single-pass run produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamPartial {
    /// Accesses this segment replayed.
    pub accesses: u64,
    /// Baseline L1D misses this segment observed.
    pub misses: u64,
    /// Configured summary budget (bytes) — a shape parameter.
    pub budget_bytes: u64,
    /// Hash seed — a shape parameter.
    pub seed: u64,
    /// This worker's resident summary memory (bytes, ≤ budget).
    pub memory_bytes: u64,
    /// First missed line of the segment (stitches the boundary pair with
    /// the previous segment's `last_miss` at reduce time).
    pub first_miss: Option<u64>,
    /// Last missed line of the segment.
    pub last_miss: Option<u64>,
    /// The heavy-hitter Space-Saving summary.
    pub heavy: SpaceSavingState,
    /// The correlated-pair CHH summary.
    pub pairs: ChhState,
}

/// Combines per-segment partial summaries — in segment order — into one
/// [`StreamReport`].
///
/// Heavy-hitter and pair summaries merge under their documented merged
/// error bounds ([`SpaceSaving::merge`], [`ChhSummary::merge`]); the
/// boundary miss transition between consecutive segments (last miss of
/// segment `i` → first miss of segment `i+1`) is re-observed here so the
/// pair stream loses nothing to the cuts. The report's `memory_bytes` is
/// the **maximum** resident footprint over the workers — the honest
/// per-worker bound a segmented run guarantees (no single worker ever
/// holds more than the budget; the partials exist sequentially at the
/// reducer only as serialized state).
///
/// # Errors
///
/// Returns a [`MergeError`] when `parts` is empty or the partials were
/// built with different budgets or seeds — summaries of different shape
/// cannot be combined (checked per sketch, surfaced as a typed error all
/// the way up through the engine and the worker protocol).
pub fn merge_partials(parts: &[StreamPartial]) -> Result<StreamReport, MergeError> {
    let first = parts.first().ok_or_else(|| MergeError::State {
        summary: "stream-partial",
        reason: "no partial summaries to merge".to_string(),
    })?;
    let mut heavy = SpaceSaving::from_state(&first.heavy)?;
    let mut pairs = ChhSummary::from_state(&first.pairs)?;
    let mut report = StreamReport {
        accesses: first.accesses,
        misses: first.misses,
        budget_bytes: first.budget_bytes,
        memory_bytes: first.memory_bytes,
        ..StreamReport::default()
    };
    let mut last_miss = first.last_miss;
    for part in &parts[1..] {
        heavy.merge(&SpaceSaving::from_state(&part.heavy)?)?;
        pairs.merge(&ChhSummary::from_state(&part.pairs)?)?;
        if let (Some(prev), Some(next)) = (last_miss, part.first_miss) {
            pairs.observe(prev, next);
        }
        if part.last_miss.is_some() {
            last_miss = part.last_miss;
        }
        report.accesses += part.accesses;
        report.misses += part.misses;
        report.memory_bytes = report.memory_bytes.max(part.memory_bytes);
    }
    finalize(report, &heavy, &pairs)
}

/// Builds the reported tables from the (merged or single-pass) summaries.
fn finalize(
    mut report: StreamReport,
    heavy: &SpaceSaving<u64>,
    pairs: &ChhSummary,
) -> Result<StreamReport, MergeError> {
    report.error_bound = heavy.max_error();
    report.heavy = heavy
        .top()
        .into_iter()
        .take(REPORT_TOP)
        .map(|(line, e)| HeavyLine { line, estimate: e.count, overestimate: e.overestimate })
        .collect();

    // Rank every monitored (key → value) transition by pair estimate.
    let mut correlated: Vec<CorrelatedMiss> = Vec::new();
    for (key, key_est) in pairs.key_estimates() {
        for p in pairs.correlated(key).unwrap_or_default() {
            correlated.push(CorrelatedMiss {
                last_line: key,
                next_line: p.value,
                estimate: p.estimate,
                key_estimate: key_est.count,
            });
        }
    }
    correlated.sort_by_key(|c| (std::cmp::Reverse(c.estimate), c.last_line, c.next_line));
    correlated.truncate(REPORT_TOP);
    report.correlated = correlated;
    Ok(report)
}

/// The one-pass analysis driver.
#[derive(Debug)]
pub struct StreamAnalysis;

impl StreamAnalysis {
    /// Replays up to `limit` accesses from `source` and summarizes the
    /// miss stream within `cfg.budget_bytes` of summary memory.
    pub fn run<S: TraceSource + ?Sized>(
        source: &mut S,
        limit: u64,
        cfg: StreamConfig,
    ) -> StreamReport {
        let whole = TraceSegment { index: 0, segments: 1, start: 0, len: limit };
        let partial = Self::run_segment(source, whole, cfg);
        merge_partials(&[partial]).expect("a single partial always merges")
    }

    /// Replays only `segment` of the trace and returns the partial
    /// summary for later merging.
    ///
    /// The worker generates (but does not simulate) the prefix before
    /// its slice, then replays the last [`StreamConfig::warmup`] of
    /// those prefix accesses through its hierarchy — uncounted — so the
    /// cache state at the slice boundary approximates the single-pass
    /// state. A slice whose `start` is within the warm-up window
    /// replays the *whole* prefix and its miss counts match a single
    /// pass exactly; deeper slices keep a small residual cold-start
    /// drift (misses the warmed window could not re-create), the
    /// documented approximation of segmented streaming. The boundary
    /// pair into the segment is deferred to [`merge_partials`] via
    /// [`StreamPartial::first_miss`]/[`StreamPartial::last_miss`].
    pub fn run_segment<S: TraceSource + ?Sized>(
        source: &mut S,
        segment: TraceSegment,
        cfg: StreamConfig,
    ) -> StreamPartial {
        Self::run_segment_with(source, segment, cfg, None, None)
    }

    /// [`run_segment`](Self::run_segment) with an optional generator
    /// checkpoint covering the skipped prefix and an optional warm
    /// hierarchy image replacing the warm-up replay.
    ///
    /// When `checkpoint` holds a [`Checkpoint`] recorded from an
    /// identically configured source at a position at or before the
    /// first access the worker must feed its hierarchy, the worker
    /// restores it and generates only the residual instead of the whole
    /// prefix, cutting setup from O(start) to O(residual + warm-up).
    ///
    /// When `warm_image` holds a [`WarmImage`] recorded at exactly
    /// `segment.start`, the worker restores the hierarchy from the
    /// image instead of replaying the warm-up window at all — combined
    /// with a checkpoint at `segment.start` the whole setup collapses
    /// to O(residual). The image was snapshotted from a hierarchy that
    /// replayed the same window, so the restored state — and with it
    /// the partial and every report built from it — is byte-identical
    /// to the replay path.
    ///
    /// Either input degrades safely: a checkpoint past the first needed
    /// access, a warm image at the wrong position or for a mismatched
    /// hierarchy shape, or invalid state in either is ignored and the
    /// worker falls back to the plain skip-and-replay loop.
    pub fn run_segment_with<S: TraceSource + ?Sized>(
        source: &mut S,
        segment: TraceSegment,
        cfg: StreamConfig,
        checkpoint: Option<&Checkpoint>,
        warm_image: Option<&WarmImage>,
    ) -> StreamPartial {
        let restored = warm_image
            .filter(|w| w.pos == segment.start)
            .and_then(|w| Hierarchy::from_image(HierarchyConfig::paper(), &w.image).ok());
        let used_warm_image = restored.is_some();
        let warm = match restored {
            Some(_) => 0,
            None => segment.start.min(cfg.warmup),
        };
        let mut skip = segment.start - warm;
        let mut used_checkpoint = false;
        if let Some(c) = checkpoint {
            if c.pos <= skip && source.restore(&c.state).is_ok() {
                skip -= c.pos;
                used_checkpoint = true;
            }
        }
        if ltc_telemetry::enabled() {
            // The restore-outcome histogram: which setup path this
            // worker actually took (offers that were ignored — wrong
            // position, failed restore — do not count).
            let outcome = if used_warm_image {
                "warm_image"
            } else if used_checkpoint {
                "checkpoint"
            } else {
                "replay"
            };
            ltc_telemetry::point(
                "segment_restore",
                vec![
                    ("outcome".to_string(), outcome.into()),
                    ("checkpoint".to_string(), used_checkpoint.into()),
                    ("index".to_string(), u64::from(segment.index).into()),
                    ("start".to_string(), segment.start.into()),
                    ("warm".to_string(), warm.into()),
                ],
            );
        }
        for _ in 0..skip {
            if source.next_access().is_none() {
                break;
            }
        }
        let mut hierarchy = match restored {
            Some(h) => h,
            None => Hierarchy::new(HierarchyConfig::paper()),
        };
        for _ in 0..warm {
            let Some(a) = source.next_access() else { break };
            hierarchy.access(a.addr, a.kind);
        }
        let mut heavy = SpaceSaving::with_budget(cfg.budget_bytes / 2);
        let mut pairs =
            ChhSummary::new(ChhConfig::with_budget(cfg.budget_bytes / 2).with_seed(cfg.seed));
        let mut partial = StreamPartial {
            budget_bytes: cfg.budget_bytes,
            seed: cfg.seed,
            ..StreamPartial::default()
        };
        let mut last_miss: Option<u64> = None;
        // Captured once: the hot loop pays one branch per miss when
        // telemetry is off, never a hub probe.
        let telemetry = ltc_telemetry::enabled();
        let sample_every = cfg.sample_every;
        let mut sampled_evictions = 0u64;

        for _ in 0..segment.len {
            let Some(a) = source.next_access() else { break };
            partial.accesses += 1;
            let out = hierarchy.access(a.addr, a.kind);
            if out.l1.hit {
                continue;
            }
            partial.misses += 1;
            let line = a.addr.line(64).0;
            heavy.observe(line);
            if let Some(prev) = last_miss {
                pairs.observe(prev, line);
            } else {
                partial.first_miss = Some(line);
            }
            last_miss = Some(line);
            if telemetry && sample_every > 0 && partial.misses % sample_every == 0 {
                sample_sketches(&heavy, &pairs, &mut sampled_evictions);
            }
        }
        if telemetry {
            // Always close with one sample so short segments still
            // report occupancy (and the eviction counter total lands).
            sample_sketches(&heavy, &pairs, &mut sampled_evictions);
        }

        partial.memory_bytes = heavy.memory_bytes() + pairs.memory_bytes();
        partial.last_miss = last_miss;
        partial.heavy = heavy.to_state();
        partial.pairs = pairs.to_state();
        partial
    }
}

/// Emits one sketch-occupancy telemetry sample: resident bytes, the
/// Space-Saving and CHH fill levels, the nested Count-Min's non-zero
/// counters, and the eviction count accumulated since the last sample
/// (as a counter delta). Occupancy scans are O(sketch size) — callers
/// rate-limit via [`StreamConfig::sample_every`].
fn sample_sketches(heavy: &SpaceSaving<u64>, pairs: &ChhSummary, sampled_evictions: &mut u64) {
    let field = |name: &str, v: u64| (name.to_string(), ltc_telemetry::FieldValue::U64(v));
    ltc_telemetry::gauge(
        "sketch.memory_bytes",
        heavy.memory_bytes() + pairs.memory_bytes(),
        Vec::new(),
    );
    ltc_telemetry::gauge(
        "sketch.heavy_occupancy",
        heavy.len() as u64,
        vec![field("capacity", heavy.capacity() as u64)],
    );
    ltc_telemetry::gauge(
        "sketch.chh_keys",
        pairs.keys() as u64,
        vec![field("capacity", pairs.key_capacity() as u64)],
    );
    let cm = pairs.pair_sketch();
    ltc_telemetry::gauge(
        "sketch.cm_occupancy",
        cm.occupancy(),
        vec![field("cells", (cm.width() * cm.depth()) as u64)],
    );
    let evictions = heavy.evictions();
    if evictions > *sampled_evictions {
        ltc_telemetry::counter("sketch.evictions", evictions - *sampled_evictions);
        *sampled_evictions = evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_trace::{Addr, MemoryAccess, Pc, Replay};

    /// A recurring conflict loop whose misses alternate over a fixed line
    /// cycle, so the transition structure is fully predictable.
    fn conflict_loop(aliases: u64, passes: usize) -> Replay {
        let span = 512 * 64;
        let mut v = Vec::new();
        for _ in 0..passes {
            for alias in 0..aliases {
                v.push(MemoryAccess::load(Pc(0x400 + alias * 8), Addr(alias * span)));
            }
        }
        Replay::once(v)
    }

    #[test]
    fn finds_the_recurring_miss_cycle() {
        let mut t = conflict_loop(4, 200);
        let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(64 << 10));
        assert_eq!(r.accesses, 800);
        assert!(r.misses >= 790, "4 aliases in a 2-way set miss every time");
        assert_eq!(r.heavy.len(), 4, "exactly four lines miss");
        assert!(r.heavy_fraction() > 0.95, "the cycle is the whole miss stream");
        // Every transition in the cycle is a -> a+span (mod 4 aliases).
        let span = 512 * 64;
        let top = &r.correlated[0];
        assert_eq!((top.next_line + 4 * span - top.last_line) % (4 * span), span);
        assert!(top.estimate > 100);
    }

    #[test]
    fn memory_bounded_for_any_trace_length() {
        let budget = 32 << 10;
        for passes in [50usize, 2000] {
            let mut t = conflict_loop(8, passes);
            let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(budget));
            assert!(
                r.memory_bytes <= budget,
                "resident {} exceeds budget {budget} at {passes} passes",
                r.memory_bytes
            );
        }
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut t = conflict_loop(4, 50);
        let r = StreamAnalysis::run(&mut t, u64::MAX, StreamConfig::with_budget(32 << 10));
        let json = serde_json::to_string(&r);
        let parsed: StreamReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = StreamConfig::with_budget(32 << 10).with_seed(7);
        let mut a = conflict_loop(6, 100);
        let mut b = conflict_loop(6, 100);
        let ra = StreamAnalysis::run(&mut a, u64::MAX, cfg);
        let rb = StreamAnalysis::run(&mut b, u64::MAX, cfg);
        assert_eq!(ra, rb);
    }

    #[test]
    fn merged_segments_match_single_pass_within_bounds() {
        let cfg = StreamConfig::with_budget(64 << 10).with_seed(1);
        let accesses = 1_600u64;
        let mut whole = conflict_loop(4, 400);
        let single = StreamAnalysis::run(&mut whole, accesses, cfg);

        for segments in [2u32, 4] {
            let partials: Vec<StreamPartial> = ltc_trace::TraceSegment::split(accesses, segments)
                .into_iter()
                .map(|seg| {
                    let mut src = conflict_loop(4, 400);
                    let partial = StreamAnalysis::run_segment(&mut src, seg, cfg);
                    assert!(
                        partial.memory_bytes <= cfg.budget_bytes,
                        "worker resident {} exceeds budget",
                        partial.memory_bytes
                    );
                    partial
                })
                .collect();
            let merged = merge_partials(&partials).unwrap();
            assert_eq!(merged.accesses, single.accesses);
            // Segment boundaries restart the hierarchy cold; this trace
            // misses on essentially every access anyway, so the counts
            // must agree almost exactly.
            assert!(merged.misses >= single.misses);
            assert!(merged.misses - single.misses <= u64::from(segments) * 8);
            // The same four lines dominate both reports, within the
            // merged ε·N bound.
            assert_eq!(merged.heavy.len(), single.heavy.len());
            for (m, s) in merged.heavy.iter().zip(&single.heavy) {
                assert_eq!(m.line, s.line);
                assert!(m.estimate.abs_diff(s.estimate) <= merged.error_bound + single.error_bound);
            }
            // The boundary stitching preserves the miss cycle's dominant
            // transitions.
            assert_eq!(merged.correlated[0].last_line, single.correlated[0].last_line);
            assert_eq!(merged.correlated[0].next_line, single.correlated[0].next_line);
        }
    }

    #[test]
    fn merge_partials_rejects_mismatched_shapes() {
        let mut a = conflict_loop(4, 50);
        let mut b = conflict_loop(4, 50);
        let whole = ltc_trace::TraceSegment { index: 0, segments: 1, start: 0, len: 200 };
        let pa = StreamAnalysis::run_segment(&mut a, whole, StreamConfig::with_budget(32 << 10));
        let pb = StreamAnalysis::run_segment(&mut b, whole, StreamConfig::with_budget(64 << 10));
        let err = merge_partials(&[pa.clone(), pb]).unwrap_err();
        assert!(matches!(err, ltc_stream::MergeError::Shape { .. }), "typed error, not a panic");

        let mut c = conflict_loop(4, 50);
        let pc = StreamAnalysis::run_segment(
            &mut c,
            whole,
            StreamConfig::with_budget(32 << 10).with_seed(9),
        );
        assert!(merge_partials(&[pa, pc]).is_err(), "seed mismatch must be refused");
        assert!(merge_partials(&[]).is_err(), "empty partials are an error");
    }

    #[test]
    fn checkpointed_segment_matches_plain_skip_exactly() {
        let cfg = StreamConfig::with_budget(32 << 10);
        let seg = TraceSegment { index: 1, segments: 2, start: SEGMENT_WARMUP + 10_000, len: 500 };
        let passes = ((seg.start + seg.len) / 4 + 1) as usize;
        let expected = StreamAnalysis::run_segment(&mut conflict_loop(4, passes), seg, cfg);

        // A checkpoint recorded partway through the skipped prefix must
        // produce the byte-identical partial while skipping less.
        let mut recorder = conflict_loop(4, passes);
        for _ in 0..8_000 {
            recorder.next_access();
        }
        let c = Checkpoint { pos: 8_000, state: recorder.checkpoint().unwrap() };
        let via = StreamAnalysis::run_segment_with(
            &mut conflict_loop(4, passes),
            seg,
            cfg,
            Some(&c),
            None,
        );
        assert_eq!(via, expected);

        // A checkpoint past the pre-warm-up point is ignored, not misused.
        let mut deep = conflict_loop(4, passes);
        for _ in 0..seg.start {
            deep.next_access();
        }
        let late = Checkpoint { pos: seg.start, state: deep.checkpoint().unwrap() };
        let fallback = StreamAnalysis::run_segment_with(
            &mut conflict_loop(4, passes),
            seg,
            cfg,
            Some(&late),
            None,
        );
        assert_eq!(fallback, expected);
    }

    /// Records a warm image the way the engine's pre-pass does: replay
    /// the warm-up window ending at `pos` through a cold hierarchy.
    fn record_warm_image(mut source: Replay, pos: u64, warmup: u64) -> WarmImage {
        let warm = pos.min(warmup);
        for _ in 0..pos - warm {
            source.next_access();
        }
        let mut h = Hierarchy::new(HierarchyConfig::paper());
        for _ in 0..warm {
            let Some(a) = source.next_access() else { break };
            h.access(a.addr, a.kind);
        }
        WarmImage { pos, image: h.to_image() }
    }

    #[test]
    fn warm_image_replaces_the_warmup_replay_byte_identically() {
        let cfg = StreamConfig::with_budget(32 << 10);
        let seg = TraceSegment { index: 1, segments: 2, start: SEGMENT_WARMUP + 10_000, len: 500 };
        let passes = ((seg.start + seg.len) / 4 + 1) as usize;
        let expected = StreamAnalysis::run_segment(&mut conflict_loop(4, passes), seg, cfg);

        let warm = record_warm_image(conflict_loop(4, passes), seg.start, cfg.warmup);
        // With a checkpoint at the slice start, the image path does zero
        // warm-up replay — and still produces the identical partial.
        let mut recorder = conflict_loop(4, passes);
        for _ in 0..seg.start {
            recorder.next_access();
        }
        let c = Checkpoint { pos: seg.start, state: recorder.checkpoint().unwrap() };
        let via = StreamAnalysis::run_segment_with(
            &mut conflict_loop(4, passes),
            seg,
            cfg,
            Some(&c),
            Some(&warm),
        );
        assert_eq!(via, expected);

        // The image also works alone (prefix generated, warm-up skipped).
        let alone = StreamAnalysis::run_segment_with(
            &mut conflict_loop(4, passes),
            seg,
            cfg,
            None,
            Some(&warm),
        );
        assert_eq!(alone, expected);

        // An image at the wrong position falls back to the replay path.
        let wrong = WarmImage { pos: seg.start - 1, image: warm.image.clone() };
        let fallback = StreamAnalysis::run_segment_with(
            &mut conflict_loop(4, passes),
            seg,
            cfg,
            None,
            Some(&wrong),
        );
        assert_eq!(fallback, expected);
    }

    #[test]
    fn warm_image_round_trips_through_serde() {
        let warm = record_warm_image(conflict_loop(4, 60_000), 120_000, SEGMENT_WARMUP);
        let parsed: WarmImage =
            serde_json::from_str(&serde_json::to_string(&warm)).expect("parses");
        assert_eq!(parsed, warm);
    }

    #[test]
    fn configured_warmup_changes_deep_segment_results() {
        // A working set that fits in L1: warmed, the slice hits; cold,
        // it re-misses the whole set. A shorter configured warm-up must
        // therefore show up in the partial.
        let resident_loop = |passes: usize| {
            let mut v = Vec::new();
            for _ in 0..passes {
                for i in 0..64u64 {
                    v.push(MemoryAccess::load(Pc(0x400), Addr(i * 64)));
                }
            }
            Replay::once(v)
        };
        let seg = TraceSegment { index: 1, segments: 2, start: 6_016, len: 800 };
        let full = StreamAnalysis::run_segment(
            &mut resident_loop(110),
            seg,
            StreamConfig::with_budget(32 << 10),
        );
        let short = StreamAnalysis::run_segment(
            &mut resident_loop(110),
            seg,
            StreamConfig::with_budget(32 << 10).with_warmup(0),
        );
        assert_eq!(full.accesses, short.accesses);
        assert!(short.misses >= full.misses + 64, "cold boundary re-misses the working set");
        assert_ne!(full, short, "warm-up length must reach the hierarchy state");
    }

    #[test]
    fn segment_runs_emit_restore_outcomes_and_sketch_samples() {
        use ltc_telemetry::{Capture, EventKind, FieldValue};
        use std::sync::Arc;

        let cfg = StreamConfig::with_budget(32 << 10);
        let seg = TraceSegment { index: 1, segments: 2, start: SEGMENT_WARMUP + 10_000, len: 500 };
        let passes = ((seg.start + seg.len) / 4 + 1) as usize;

        let outcome_of = |capture: &Capture| {
            let points = capture.named("segment_restore");
            assert_eq!(points.len(), 1, "exactly one restore outcome per segment run");
            match points[0].field("outcome") {
                Some(FieldValue::Str(s)) => s.clone(),
                other => panic!("outcome field missing: {other:?}"),
            }
        };

        // Replay fallback: no checkpoint, no image.
        let capture = Arc::new(Capture::new());
        ltc_telemetry::with_subscriber(capture.clone(), || {
            StreamAnalysis::run_segment(&mut conflict_loop(4, passes), seg, cfg)
        });
        assert_eq!(outcome_of(&capture), "replay");
        // The final sketch sample always lands, even for short segments.
        assert!(!capture.named("sketch.memory_bytes").is_empty());
        assert!(!capture.named("sketch.cm_occupancy").is_empty());
        assert!(capture
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Gauge)
            .all(|e| e.value().is_some()));

        // Checkpoint outcome.
        let mut recorder = conflict_loop(4, passes);
        for _ in 0..8_000 {
            recorder.next_access();
        }
        let c = Checkpoint { pos: 8_000, state: recorder.checkpoint().unwrap() };
        let capture = Arc::new(Capture::new());
        ltc_telemetry::with_subscriber(capture.clone(), || {
            StreamAnalysis::run_segment_with(
                &mut conflict_loop(4, passes),
                seg,
                cfg,
                Some(&c),
                None,
            )
        });
        assert_eq!(outcome_of(&capture), "checkpoint");

        // Warm-image outcome.
        let warm = record_warm_image(conflict_loop(4, passes), seg.start, cfg.warmup);
        let capture = Arc::new(Capture::new());
        ltc_telemetry::with_subscriber(capture.clone(), || {
            StreamAnalysis::run_segment_with(
                &mut conflict_loop(4, passes),
                seg,
                cfg,
                None,
                Some(&warm),
            )
        });
        assert_eq!(outcome_of(&capture), "warm_image");
    }

    #[test]
    fn sketch_sampling_interval_rate_limits_gauges() {
        use ltc_telemetry::Capture;
        use std::sync::Arc;

        let seg = TraceSegment { index: 0, segments: 1, start: 0, len: 800 };
        // Every miss in this trace reaches the sketches; ~800 misses at
        // interval 100 → 8 periodic samples plus the final one.
        let run = |sample_every: u64| {
            let capture = Arc::new(Capture::new());
            let cfg = StreamConfig::with_budget(32 << 10).with_sample_every(sample_every);
            ltc_telemetry::with_subscriber(capture.clone(), || {
                StreamAnalysis::run_segment(&mut conflict_loop(4, 200), seg, cfg)
            });
            capture.named("sketch.memory_bytes").len()
        };
        assert_eq!(run(0), 1, "interval 0 keeps only the final sample");
        let sampled = run(100);
        assert!((8..=10).contains(&sampled), "expected ~9 samples, got {sampled}");
    }

    #[test]
    fn telemetry_never_changes_the_partial() {
        use ltc_telemetry::Capture;
        use std::sync::Arc;

        let cfg = StreamConfig::with_budget(32 << 10).with_sample_every(50);
        let seg = TraceSegment { index: 0, segments: 1, start: 0, len: 600 };
        let quiet = StreamAnalysis::run_segment(&mut conflict_loop(4, 200), seg, cfg);
        let observed = ltc_telemetry::with_subscriber(Arc::new(Capture::new()), || {
            StreamAnalysis::run_segment(&mut conflict_loop(4, 200), seg, cfg)
        });
        assert_eq!(quiet, observed);
    }

    #[test]
    fn partial_round_trips_through_serde() {
        let mut t = conflict_loop(4, 100);
        let seg = ltc_trace::TraceSegment::nth(400, 2, 1);
        let p = StreamAnalysis::run_segment(&mut t, seg, StreamConfig::with_budget(32 << 10));
        let parsed: StreamPartial =
            serde_json::from_str(&serde_json::to_string(&p)).expect("parses");
        assert_eq!(parsed, p);
        // A revived partial merges identically to the original.
        assert_eq!(merge_partials(&[parsed]).unwrap(), merge_partials(&[p]).unwrap());
    }
}
