//! Set-associative cache hierarchy simulator.
//!
//! This crate provides the functional (hit/miss/eviction) cache model used
//! by every experiment in the LT-cords reproduction: a configurable
//! set-associative [`Cache`] with LRU or FIFO replacement, prefetch fills
//! with block provenance tracking, and a two-level [`Hierarchy`] matching the
//! paper's 64 KB 2-way L1D + 1 MB 8-way unified L2 (Table 1).
//!
//! The cache reports rich eviction information on every fill because the
//! last-touch predictors built on top of it (DBCP and LT-cords) train on
//! evictions: an eviction identifies the *last touch* of the evicted block
//! and pairs it with the replacing address (paper Section 2).
//!
//! # Example
//!
//! ```
//! use ltc_cache::{Cache, CacheConfig};
//! use ltc_trace::{Addr, AccessKind};
//!
//! let mut l1 = Cache::new(CacheConfig::l1d());
//! let miss = l1.access(Addr(0x1000), AccessKind::Load);
//! assert!(!miss.hit);
//! let hit = l1.access(Addr(0x1008), AccessKind::Load); // same line
//! assert!(hit.hit);
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod image;
pub mod stats;

pub use cache::{AccessOutcome, Cache, EvictedBlock, PrefetchOutcome};
pub use config::{CacheConfig, Geometry, GeometryError, ReplacementPolicy};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyOutcome, MemLevel};
pub use image::{CacheImage, HierarchyImage, ImageError};
pub use stats::CacheStats;
