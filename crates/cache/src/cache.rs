//! The set-associative cache model.

use ltc_trace::{AccessKind, Addr};

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::CacheStats;

/// A block evicted by a fill.
///
/// Evictions drive last-touch training: the eviction of `addr` means its
/// most recent access was that block's *last touch*, and the address that
/// replaced it is the prediction target (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Line base address of the evicted block.
    pub addr: Addr,
    /// Whether the block was dirty (write-back traffic).
    pub dirty: bool,
    /// Whether the block was filled by a prefetch and never demand-touched
    /// (a useless prefetch).
    pub prefetched_unused: bool,
    /// Cache access sequence number at which the block was filled.
    pub fill_seq: u64,
    /// Sequence number of the block's last demand access (its last touch).
    pub last_touch_seq: u64,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Hit on a prefetched block that had not been demand-touched yet —
    /// i.e. this access is the one that makes the prefetch *useful*.
    pub first_use_of_prefetch: bool,
    /// Block evicted by the fill, if the access missed and displaced a
    /// valid block.
    pub evicted: Option<EvictedBlock>,
    /// Set index of the access (used by predictors).
    pub set: u64,
}

/// Result of a prefetch fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The block was already resident; nothing changed.
    AlreadyPresent,
    /// The block was installed.
    Filled {
        /// Block displaced by the prefetch, if any.
        evicted: Option<EvictedBlock>,
        /// Whether the displaced block was the predictor's intended victim.
        replaced_intended_victim: bool,
    },
}

/// Block state bits packed into one byte per way.
const VALID: u8 = 1;
const DIRTY: u8 = 2;
/// Filled by prefetch and not yet demand-accessed.
const PENDING: u8 = 4;

/// Per-way replacement timestamps, packed so an 8-way set's entire
/// replacement metadata spans one 64-byte cache line.
///
/// Stamps are stored as `u32`: the cache's sequence counter panics before
/// it would truncate (4.29 billion accesses per cache instance), so LRU
/// order can never silently wrap.
#[derive(Debug, Clone, Copy, Default)]
struct Stamps {
    fill: u32,
    touch: u32,
}

/// A set-associative cache with LRU or FIFO replacement.
///
/// The cache maintains an internal access sequence counter used for LRU
/// ordering and for dead-time measurement (Figure 2 of the paper measures
/// the time between a block's last touch and its eviction).
///
/// Block state is a struct-of-arrays *tag array*: tags, state bytes, and
/// the two sequence timestamps live in four parallel flat vectors indexed
/// by `set * ways + way`. The hit path therefore scans one densely packed
/// 64-byte tag line per 8-way set (plus one state byte per way) instead
/// of striding through 40-byte block structs — the dominant cost of the
/// coverage kernel is exactly this scan.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<u64>,
    state: Vec<u8>,
    stamps: Vec<Stamps>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    set_shift: u32,
    seq: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics with the [`crate::GeometryError`] message if the
    /// configuration is invalid. Use [`Cache::try_new`] to surface the
    /// typed error instead.
    pub fn new(cfg: CacheConfig) -> Self {
        match Cache::try_new(cfg) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates an empty cache, rejecting invalid geometry as a typed
    /// [`crate::GeometryError`].
    ///
    /// # Errors
    ///
    /// Returns the violated invariant (zero dimension, non-power-of-two
    /// line size or set count, capacity not dividing evenly).
    pub fn try_new(cfg: CacheConfig) -> Result<Self, crate::GeometryError> {
        let g = cfg.try_validate()?;
        let ways = cfg.ways as usize;
        let slots = (g.sets as usize) * ways;
        Ok(Cache {
            cfg,
            tags: vec![0; slots],
            state: vec![0; slots],
            stamps: vec![Stamps::default(); slots],
            ways,
            set_mask: g.set_mask,
            line_shift: g.line_shift,
            set_shift: g.set_bits,
            seq: 0,
            stats: CacheStats::default(),
        })
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Current access sequence number (advances on every demand access).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (u64, u64) {
        let line = addr.0 >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    /// Index of the way holding `tag` in the set starting at `start`, if
    /// resident — the tag-array scan every access begins with.
    #[inline]
    fn find_way(&self, start: usize, tag: u64) -> Option<usize> {
        let tags = &self.tags[start..start + self.ways];
        let state = &self.state[start..start + self.ways];
        (0..tags.len()).find(|&w| tags[w] == tag && state[w] & VALID != 0)
    }

    /// Claims the next sequence stamp, refusing to let it truncate.
    #[inline]
    fn next_seq(&mut self) -> u32 {
        self.seq += 1;
        assert!(self.seq <= u64::from(u32::MAX), "cache sequence counter exceeded 2^32-1 accesses");
        self.seq as u32
    }

    /// Performs a demand access, filling on miss.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        let seq = self.next_seq();
        let (set, tag) = self.set_and_tag(addr);
        let is_store = !kind.is_load();
        let start = (set as usize) * self.ways;

        // Hit path.
        if let Some(w) = self.find_way(start, tag) {
            let i = start + w;
            let first_use = self.state[i] & PENDING != 0;
            self.state[i] = (self.state[i] & !PENDING) | if is_store { DIRTY } else { 0 };
            self.stamps[i].touch = seq;
            self.stats.accesses += 1;
            self.stats.stores += u64::from(is_store);
            self.stats.prefetch_hits += u64::from(first_use);
            return AccessOutcome {
                hit: true,
                first_use_of_prefetch: first_use,
                evicted: None,
                set,
            };
        }
        // Miss: select a victim and fill.
        let i = start + self.select_victim(start);
        let evicted = self.evicted_info(i, set);
        self.tags[i] = tag;
        self.state[i] = VALID | if is_store { DIRTY } else { 0 };
        self.stamps[i] = Stamps { fill: seq, touch: seq };
        self.stats.accesses += 1;
        self.stats.stores += u64::from(is_store);
        self.stats.misses += 1;
        self.stats.evictions += u64::from(evicted.is_some());
        if let Some(ev) = &evicted {
            self.stats.useless_prefetches += u64::from(ev.prefetched_unused);
        }
        AccessOutcome { hit: false, first_use_of_prefetch: false, evicted, set }
    }

    /// Picks the way a fill of the set starting at `start` replaces:
    /// first invalid way, else the policy's oldest timestamp (first way
    /// on ties, matching the original block-struct implementation).
    fn select_victim(&self, start: usize) -> usize {
        let state = &self.state[start..start + self.ways];
        if let Some(w) = state.iter().position(|s| s & VALID == 0) {
            return w;
        }
        let stamps = &self.stamps[start..start + self.ways];
        let mut best = 0;
        match self.cfg.policy {
            ReplacementPolicy::Lru => {
                for w in 1..stamps.len() {
                    if stamps[w].touch < stamps[best].touch {
                        best = w;
                    }
                }
            }
            ReplacementPolicy::Fifo => {
                for w in 1..stamps.len() {
                    if stamps[w].fill < stamps[best].fill {
                        best = w;
                    }
                }
            }
        }
        best
    }

    /// The [`EvictedBlock`] record for displacing slot `i` of `set`, or
    /// `None` when the slot is invalid.
    fn evicted_info(&self, i: usize, set: u64) -> Option<EvictedBlock> {
        let s = self.state[i];
        if s & VALID == 0 {
            return None;
        }
        Some(EvictedBlock {
            addr: self.line_addr(set, self.tags[i]),
            dirty: s & DIRTY != 0,
            prefetched_unused: s & PENDING != 0,
            fill_seq: u64::from(self.stamps[i].fill),
            last_touch_seq: u64::from(self.stamps[i].touch),
        })
    }

    /// Installs `addr` as a prefetched block.
    ///
    /// If `intended_victim` names a resident block in the same set, that
    /// block is displaced (the DBCP/LT-cords policy of replacing the
    /// predicted-dead block, Section 2); otherwise the normal replacement
    /// policy chooses. Returns what happened.
    pub fn fill_prefetch(&mut self, addr: Addr, intended_victim: Option<Addr>) -> PrefetchOutcome {
        let (set, tag) = self.set_and_tag(addr);
        let seq = self.seq as u32;
        let start = (set as usize) * self.ways;

        let victim_tag = intended_victim.and_then(|v| {
            let (vset, vtag) = self.set_and_tag(v);
            (vset == set).then_some(vtag)
        });
        if self.find_way(start, tag).is_some() {
            self.stats.prefetch_already_present += 1;
            return PrefetchOutcome::AlreadyPresent;
        }
        let (victim_way, replaced_intended) = match victim_tag {
            Some(vt) => match self.find_way(start, vt) {
                Some(w) => (w, true),
                None => (self.select_victim(start), false),
            },
            None => (self.select_victim(start), false),
        };
        let i = start + victim_way;
        let evicted = self.evicted_info(i, set);
        self.tags[i] = tag;
        self.state[i] = VALID | PENDING;
        // A prefetched block should not look freshly used to LRU: it
        // inherits the current sequence as its fill time.
        self.stamps[i] = Stamps { fill: seq, touch: seq };
        self.stats.prefetch_fills += 1;
        if let Some(ev) = &evicted {
            self.stats.useless_prefetches += u64::from(ev.prefetched_unused);
        }
        PrefetchOutcome::Filled { evicted, replaced_intended_victim: replaced_intended }
    }

    /// Whether the line containing `addr` is resident (non-perturbing).
    pub fn contains(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag_ref(addr);
        self.find_way((set as usize) * self.ways, tag).is_some()
    }

    /// Whether `addr` is resident as a never-demand-touched prefetch.
    pub fn is_pending_prefetch(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag_ref(addr);
        let start = (set as usize) * self.ways;
        match self.find_way(start, tag) {
            Some(w) => self.state[start + w] & PENDING != 0,
            None => false,
        }
    }

    /// The address the replacement policy would evict for a fill of `addr`,
    /// if the set is full (non-perturbing).
    pub fn peek_victim(&self, addr: Addr) -> Option<Addr> {
        let (set, _) = self.set_and_tag_ref(addr);
        let start = (set as usize) * self.ways;
        if self.state[start..start + self.ways].iter().any(|s| s & VALID == 0) {
            return None;
        }
        let way = self.select_victim(start);
        Some(self.line_addr(set, self.tags[start + way]))
    }

    /// Enumerates resident line addresses (diagnostics and invariants).
    pub fn resident_lines(&self) -> Vec<Addr> {
        let mut v = Vec::new();
        for set in 0..=self.set_mask {
            let start = (set as usize) * self.ways;
            for w in 0..self.ways {
                if self.state[start + w] & VALID != 0 {
                    v.push(self.line_addr(set, self.tags[start + w]));
                }
            }
        }
        v
    }

    /// Builds the [`crate::CacheImage`] snapshot ([`Stamps`] is private
    /// to this module, so the split into parallel vectors happens here).
    pub(crate) fn image(&self) -> crate::image::CacheImage {
        crate::image::CacheImage {
            config: self.cfg,
            tags: self.tags.clone(),
            state: self.state.clone(),
            fill: self.stamps.iter().map(|s| s.fill).collect(),
            touch: self.stamps.iter().map(|s| s.touch).collect(),
            seq: self.seq,
            stats: self.stats,
        }
    }

    /// Rebuilds a cache from a validated snapshot (the typed-error
    /// gatekeeper behind [`Cache::from_image`]).
    pub(crate) fn restore_image(
        image: &crate::image::CacheImage,
    ) -> Result<Cache, crate::image::ImageError> {
        use crate::image::ImageError;
        let mut c = Cache::try_new(image.config).map_err(ImageError::Geometry)?;
        let slots = c.tags.len();
        for (field, found) in [
            ("tags", image.tags.len()),
            ("state", image.state.len()),
            ("fill", image.fill.len()),
            ("touch", image.touch.len()),
        ] {
            if found != slots {
                return Err(ImageError::Shape { field, expected: slots, found });
            }
        }
        if image.seq > u64::from(u32::MAX) {
            return Err(ImageError::Invalid(format!(
                "sequence counter {} exceeds the u32 stamp range",
                image.seq
            )));
        }
        c.tags.copy_from_slice(&image.tags);
        c.state.copy_from_slice(&image.state);
        for (slot, (&fill, &touch)) in
            c.stamps.iter_mut().zip(image.fill.iter().zip(image.touch.iter()))
        {
            *slot = Stamps { fill, touch };
        }
        c.seq = image.seq;
        c.stats = image.stats;
        Ok(c)
    }

    #[inline]
    fn set_and_tag_ref(&self, addr: Addr) -> (u64, u64) {
        let line = addr.0 >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    #[inline]
    fn line_addr(&self, set: u64, tag: u64) -> Addr {
        Addr(((tag << self.set_shift) | set) << self.line_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            total_bytes: 256,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        })
    }

    /// Addresses mapping to set 0 of the tiny cache: multiples of 128.
    fn set0(n: u64) -> Addr {
        Addr(n * 128)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr(0), AccessKind::Load).hit);
        assert!(c.access(Addr(8), AccessKind::Load).hit, "same line hits");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(0), AccessKind::Load); // 0 is now MRU
        let out = c.access(set0(2), AccessKind::Load);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.addr, set0(1), "LRU victim is block 1");
        assert!(c.contains(set0(0)));
        assert!(c.contains(set0(2)));
        assert!(!c.contains(set0(1)));
    }

    #[test]
    fn eviction_reports_last_touch_seq() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load); // seq 1
        c.access(set0(1), AccessKind::Load); // seq 2
        c.access(set0(0), AccessKind::Load); // seq 3: last touch of block 0
        c.access(set0(2), AccessKind::Load); // seq 4: evicts block 1 (LRU)
        let out = c.access(set0(3), AccessKind::Load); // seq 5: evicts block 0
        let ev = out.evicted.unwrap();
        assert_eq!(ev.addr, set0(0));
        assert_eq!(ev.last_touch_seq, 3);
        assert_eq!(ev.fill_seq, 1);
    }

    #[test]
    fn store_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Store);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(2), AccessKind::Load); // evicts 0 (LRU)
                                             // block 0 was LRU (accessed at seq 1).
        let resident = c.resident_lines();
        assert!(!resident.contains(&set0(0)));
        // Re-fill and check the dirty bit came through the eviction.
        let mut c = tiny();
        c.access(set0(0), AccessKind::Store);
        c.access(set0(1), AccessKind::Load);
        let ev = c.access(set0(2), AccessKind::Load).evicted.unwrap();
        assert_eq!(ev.addr, set0(0));
        assert!(ev.dirty);
    }

    #[test]
    fn prefetch_fill_replaces_intended_victim() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        // Predict block 1 dead; bring in block 2 over it even though block 0
        // is the LRU choice.
        let out = c.fill_prefetch(set0(2), Some(set0(1)));
        match out {
            PrefetchOutcome::Filled { evicted, replaced_intended_victim } => {
                assert!(replaced_intended_victim);
                assert_eq!(evicted.unwrap().addr, set0(1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(c.contains(set0(0)), "the non-victim way is untouched");
        assert!(c.contains(set0(2)));
    }

    #[test]
    fn prefetch_fill_falls_back_to_policy_when_victim_absent() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        let out = c.fill_prefetch(set0(3), Some(set0(7)));
        match out {
            PrefetchOutcome::Filled { evicted, replaced_intended_victim } => {
                assert!(!replaced_intended_victim);
                assert_eq!(evicted.unwrap().addr, set0(0), "LRU fallback victim");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn prefetch_of_resident_block_is_noop() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        assert_eq!(c.fill_prefetch(set0(0), None), PrefetchOutcome::AlreadyPresent);
        assert_eq!(c.stats().prefetch_fills, 0);
        assert_eq!(c.stats().prefetch_already_present, 1);
    }

    #[test]
    fn first_demand_touch_of_prefetch_is_flagged_once() {
        let mut c = tiny();
        c.fill_prefetch(set0(2), None);
        assert!(c.is_pending_prefetch(set0(2)));
        let first = c.access(set0(2), AccessKind::Load);
        assert!(first.hit && first.first_use_of_prefetch);
        assert!(!c.is_pending_prefetch(set0(2)));
        let second = c.access(set0(2), AccessKind::Load);
        assert!(second.hit && !second.first_use_of_prefetch);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn useless_prefetch_counted_on_eviction() {
        let mut c = tiny();
        c.fill_prefetch(set0(9), None);
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load); // evicts the pending prefetch (it is LRU-oldest)
        assert!(c.stats().useless_prefetches >= 1);
    }

    #[test]
    fn peek_victim_matches_next_eviction() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        let predicted = c.peek_victim(set0(5)).unwrap();
        let ev = c.access(set0(5), AccessKind::Load).evicted.unwrap();
        assert_eq!(predicted, ev.addr);
    }

    #[test]
    fn peek_victim_none_when_set_has_room() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        assert!(c.peek_victim(set0(5)).is_none());
    }

    #[test]
    fn fifo_policy_ignores_recency() {
        let mut c = Cache::new(CacheConfig {
            total_bytes: 256,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Fifo,
        });
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(0), AccessKind::Load); // touch 0 again — FIFO does not care
        let ev = c.access(set0(2), AccessKind::Load).evicted.unwrap();
        assert_eq!(ev.addr, set0(0), "FIFO evicts the oldest fill");
    }

    #[test]
    fn resident_lines_counts_valid_blocks() {
        let mut c = tiny();
        assert!(c.resident_lines().is_empty());
        c.access(Addr(0), AccessKind::Load);
        c.access(Addr(64), AccessKind::Load);
        let mut lines = c.resident_lines();
        lines.sort();
        assert_eq!(lines, vec![Addr(0), Addr(64)]);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(Addr(0), AccessKind::Load); // set 0
        c.access(Addr(64), AccessKind::Load); // set 1
        c.access(Addr(128), AccessKind::Load); // set 0
        c.access(Addr(192), AccessKind::Load); // set 1
        assert_eq!(c.stats().evictions, 0, "4 blocks fit in 2 sets x 2 ways");
    }
}
