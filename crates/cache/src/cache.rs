//! The set-associative cache model.

use ltc_trace::{AccessKind, Addr};

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::CacheStats;

/// A block evicted by a fill.
///
/// Evictions drive last-touch training: the eviction of `addr` means its
/// most recent access was that block's *last touch*, and the address that
/// replaced it is the prediction target (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Line base address of the evicted block.
    pub addr: Addr,
    /// Whether the block was dirty (write-back traffic).
    pub dirty: bool,
    /// Whether the block was filled by a prefetch and never demand-touched
    /// (a useless prefetch).
    pub prefetched_unused: bool,
    /// Cache access sequence number at which the block was filled.
    pub fill_seq: u64,
    /// Sequence number of the block's last demand access (its last touch).
    pub last_touch_seq: u64,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Hit on a prefetched block that had not been demand-touched yet —
    /// i.e. this access is the one that makes the prefetch *useful*.
    pub first_use_of_prefetch: bool,
    /// Block evicted by the fill, if the access missed and displaced a
    /// valid block.
    pub evicted: Option<EvictedBlock>,
    /// Set index of the access (used by predictors).
    pub set: u64,
}

/// Result of a prefetch fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The block was already resident; nothing changed.
    AlreadyPresent,
    /// The block was installed.
    Filled {
        /// Block displaced by the prefetch, if any.
        evicted: Option<EvictedBlock>,
        /// Whether the displaced block was the predictor's intended victim.
        replaced_intended_victim: bool,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Block {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Filled by prefetch and not yet demand-accessed.
    prefetched_pending: bool,
    fill_seq: u64,
    last_touch_seq: u64,
}

/// A set-associative cache with LRU or FIFO replacement.
///
/// The cache maintains an internal access sequence counter used for LRU
/// ordering and for dead-time measurement (Figure 2 of the paper measures
/// the time between a block's last touch and its eviction).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    blocks: Vec<Block>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    set_shift: u32,
    seq: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            blocks: vec![Block::default(); (sets as usize) * ways],
            ways,
            set_mask: sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Current access sequence number (advances on every demand access).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (u64, u64) {
        let line = addr.0 >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    #[inline]
    fn set_slice(&mut self, set: u64) -> &mut [Block] {
        let start = (set as usize) * self.ways;
        &mut self.blocks[start..start + self.ways]
    }

    /// Performs a demand access, filling on miss.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        self.seq += 1;
        let seq = self.seq;
        let (set, tag) = self.set_and_tag(addr);
        let is_store = !kind.is_load();
        let ways = self.ways;
        let line_bytes = self.cfg.line_bytes;
        let set_shift = self.set_shift;
        let line_shift = self.line_shift;

        let policy = self.cfg.policy;
        let blocks = self.set_slice(set);
        // Hit path.
        for b in blocks.iter_mut() {
            if b.valid && b.tag == tag {
                let first_use = b.prefetched_pending;
                b.prefetched_pending = false;
                b.last_touch_seq = seq;
                b.dirty |= is_store;
                self.stats.accesses += 1;
                self.stats.stores += u64::from(is_store);
                self.stats.prefetch_hits += u64::from(first_use);
                return AccessOutcome {
                    hit: true,
                    first_use_of_prefetch: first_use,
                    evicted: None,
                    set,
                };
            }
        }
        // Miss: select a victim and fill.
        let victim_way = select_victim(blocks, policy, ways);
        let victim = &mut blocks[victim_way];
        let evicted = evicted_info(victim, set, set_shift, line_shift, line_bytes);
        *victim = Block {
            tag,
            valid: true,
            dirty: is_store,
            prefetched_pending: false,
            fill_seq: seq,
            last_touch_seq: seq,
        };
        self.stats.accesses += 1;
        self.stats.stores += u64::from(is_store);
        self.stats.misses += 1;
        self.stats.evictions += u64::from(evicted.is_some());
        if let Some(ev) = &evicted {
            self.stats.useless_prefetches += u64::from(ev.prefetched_unused);
        }
        AccessOutcome { hit: false, first_use_of_prefetch: false, evicted, set }
    }

    /// Installs `addr` as a prefetched block.
    ///
    /// If `intended_victim` names a resident block in the same set, that
    /// block is displaced (the DBCP/LT-cords policy of replacing the
    /// predicted-dead block, Section 2); otherwise the normal replacement
    /// policy chooses. Returns what happened.
    pub fn fill_prefetch(&mut self, addr: Addr, intended_victim: Option<Addr>) -> PrefetchOutcome {
        let (set, tag) = self.set_and_tag(addr);
        let seq = self.seq;
        let ways = self.ways;
        let policy = self.cfg.policy;
        let line_bytes = self.cfg.line_bytes;
        let set_shift = self.set_shift;
        let line_shift = self.line_shift;

        let victim_tag = intended_victim.and_then(|v| {
            let (vset, vtag) = self.set_and_tag(v);
            (vset == set).then_some(vtag)
        });
        let blocks = self.set_slice(set);
        if blocks.iter().any(|b| b.valid && b.tag == tag) {
            self.stats.prefetch_already_present += 1;
            return PrefetchOutcome::AlreadyPresent;
        }
        let (victim_way, replaced_intended) = match victim_tag {
            Some(vt) => match blocks.iter().position(|b| b.valid && b.tag == vt) {
                Some(w) => (w, true),
                None => (select_victim(blocks, policy, ways), false),
            },
            None => (select_victim(blocks, policy, ways), false),
        };
        let victim = &mut blocks[victim_way];
        let evicted = evicted_info(victim, set, set_shift, line_shift, line_bytes);
        *victim = Block {
            tag,
            valid: true,
            dirty: false,
            prefetched_pending: true,
            // A prefetched block should not look freshly used to LRU: it
            // inherits the current sequence as its fill time.
            fill_seq: seq,
            last_touch_seq: seq,
        };
        self.stats.prefetch_fills += 1;
        if let Some(ev) = &evicted {
            self.stats.useless_prefetches += u64::from(ev.prefetched_unused);
        }
        PrefetchOutcome::Filled { evicted, replaced_intended_victim: replaced_intended }
    }

    /// Whether the line containing `addr` is resident (non-perturbing).
    pub fn contains(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag_ref(addr);
        let start = (set as usize) * self.ways;
        self.blocks[start..start + self.ways].iter().any(|b| b.valid && b.tag == tag)
    }

    /// Whether `addr` is resident as a never-demand-touched prefetch.
    pub fn is_pending_prefetch(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag_ref(addr);
        let start = (set as usize) * self.ways;
        self.blocks[start..start + self.ways]
            .iter()
            .any(|b| b.valid && b.tag == tag && b.prefetched_pending)
    }

    /// The address the replacement policy would evict for a fill of `addr`,
    /// if the set is full (non-perturbing).
    pub fn peek_victim(&self, addr: Addr) -> Option<Addr> {
        let (set, _) = self.set_and_tag_ref(addr);
        let start = (set as usize) * self.ways;
        let blocks = &self.blocks[start..start + self.ways];
        if blocks.iter().any(|b| !b.valid) {
            return None;
        }
        let way = match self.cfg.policy {
            ReplacementPolicy::Lru => {
                blocks.iter().enumerate().min_by_key(|(_, b)| b.last_touch_seq).map(|(i, _)| i)?
            }
            ReplacementPolicy::Fifo => {
                blocks.iter().enumerate().min_by_key(|(_, b)| b.fill_seq).map(|(i, _)| i)?
            }
        };
        let b = &blocks[way];
        Some(self.line_addr(set, b.tag))
    }

    /// Enumerates resident line addresses (diagnostics and invariants).
    pub fn resident_lines(&self) -> Vec<Addr> {
        let mut v = Vec::new();
        for set in 0..=self.set_mask {
            let start = (set as usize) * self.ways;
            for b in &self.blocks[start..start + self.ways] {
                if b.valid {
                    v.push(self.line_addr(set, b.tag));
                }
            }
        }
        v
    }

    #[inline]
    fn set_and_tag_ref(&self, addr: Addr) -> (u64, u64) {
        let line = addr.0 >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    #[inline]
    fn line_addr(&self, set: u64, tag: u64) -> Addr {
        Addr(((tag << self.set_shift) | set) << self.line_shift)
    }
}

fn select_victim(blocks: &[Block], policy: ReplacementPolicy, ways: usize) -> usize {
    // Prefer an invalid way.
    if let Some(w) = blocks.iter().position(|b| !b.valid) {
        return w;
    }
    match policy {
        ReplacementPolicy::Lru => {
            let mut best = 0;
            for w in 1..ways {
                if blocks[w].last_touch_seq < blocks[best].last_touch_seq {
                    best = w;
                }
            }
            best
        }
        ReplacementPolicy::Fifo => {
            let mut best = 0;
            for w in 1..ways {
                if blocks[w].fill_seq < blocks[best].fill_seq {
                    best = w;
                }
            }
            best
        }
    }
}

fn evicted_info(
    victim: &Block,
    set: u64,
    set_shift: u32,
    line_shift: u32,
    _line_bytes: u64,
) -> Option<EvictedBlock> {
    if !victim.valid {
        return None;
    }
    Some(EvictedBlock {
        addr: Addr(((victim.tag << set_shift) | set) << line_shift),
        dirty: victim.dirty,
        prefetched_unused: victim.prefetched_pending,
        fill_seq: victim.fill_seq,
        last_touch_seq: victim.last_touch_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            total_bytes: 256,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        })
    }

    /// Addresses mapping to set 0 of the tiny cache: multiples of 128.
    fn set0(n: u64) -> Addr {
        Addr(n * 128)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr(0), AccessKind::Load).hit);
        assert!(c.access(Addr(8), AccessKind::Load).hit, "same line hits");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(0), AccessKind::Load); // 0 is now MRU
        let out = c.access(set0(2), AccessKind::Load);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.addr, set0(1), "LRU victim is block 1");
        assert!(c.contains(set0(0)));
        assert!(c.contains(set0(2)));
        assert!(!c.contains(set0(1)));
    }

    #[test]
    fn eviction_reports_last_touch_seq() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load); // seq 1
        c.access(set0(1), AccessKind::Load); // seq 2
        c.access(set0(0), AccessKind::Load); // seq 3: last touch of block 0
        c.access(set0(2), AccessKind::Load); // seq 4: evicts block 1 (LRU)
        let out = c.access(set0(3), AccessKind::Load); // seq 5: evicts block 0
        let ev = out.evicted.unwrap();
        assert_eq!(ev.addr, set0(0));
        assert_eq!(ev.last_touch_seq, 3);
        assert_eq!(ev.fill_seq, 1);
    }

    #[test]
    fn store_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Store);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(2), AccessKind::Load); // evicts 0 (LRU)
                                             // block 0 was LRU (accessed at seq 1).
        let resident = c.resident_lines();
        assert!(!resident.contains(&set0(0)));
        // Re-fill and check the dirty bit came through the eviction.
        let mut c = tiny();
        c.access(set0(0), AccessKind::Store);
        c.access(set0(1), AccessKind::Load);
        let ev = c.access(set0(2), AccessKind::Load).evicted.unwrap();
        assert_eq!(ev.addr, set0(0));
        assert!(ev.dirty);
    }

    #[test]
    fn prefetch_fill_replaces_intended_victim() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        // Predict block 1 dead; bring in block 2 over it even though block 0
        // is the LRU choice.
        let out = c.fill_prefetch(set0(2), Some(set0(1)));
        match out {
            PrefetchOutcome::Filled { evicted, replaced_intended_victim } => {
                assert!(replaced_intended_victim);
                assert_eq!(evicted.unwrap().addr, set0(1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(c.contains(set0(0)), "the non-victim way is untouched");
        assert!(c.contains(set0(2)));
    }

    #[test]
    fn prefetch_fill_falls_back_to_policy_when_victim_absent() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        let out = c.fill_prefetch(set0(3), Some(set0(7)));
        match out {
            PrefetchOutcome::Filled { evicted, replaced_intended_victim } => {
                assert!(!replaced_intended_victim);
                assert_eq!(evicted.unwrap().addr, set0(0), "LRU fallback victim");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn prefetch_of_resident_block_is_noop() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        assert_eq!(c.fill_prefetch(set0(0), None), PrefetchOutcome::AlreadyPresent);
        assert_eq!(c.stats().prefetch_fills, 0);
        assert_eq!(c.stats().prefetch_already_present, 1);
    }

    #[test]
    fn first_demand_touch_of_prefetch_is_flagged_once() {
        let mut c = tiny();
        c.fill_prefetch(set0(2), None);
        assert!(c.is_pending_prefetch(set0(2)));
        let first = c.access(set0(2), AccessKind::Load);
        assert!(first.hit && first.first_use_of_prefetch);
        assert!(!c.is_pending_prefetch(set0(2)));
        let second = c.access(set0(2), AccessKind::Load);
        assert!(second.hit && !second.first_use_of_prefetch);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn useless_prefetch_counted_on_eviction() {
        let mut c = tiny();
        c.fill_prefetch(set0(9), None);
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load); // evicts the pending prefetch (it is LRU-oldest)
        assert!(c.stats().useless_prefetches >= 1);
    }

    #[test]
    fn peek_victim_matches_next_eviction() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        let predicted = c.peek_victim(set0(5)).unwrap();
        let ev = c.access(set0(5), AccessKind::Load).evicted.unwrap();
        assert_eq!(predicted, ev.addr);
    }

    #[test]
    fn peek_victim_none_when_set_has_room() {
        let mut c = tiny();
        c.access(set0(0), AccessKind::Load);
        assert!(c.peek_victim(set0(5)).is_none());
    }

    #[test]
    fn fifo_policy_ignores_recency() {
        let mut c = Cache::new(CacheConfig {
            total_bytes: 256,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Fifo,
        });
        c.access(set0(0), AccessKind::Load);
        c.access(set0(1), AccessKind::Load);
        c.access(set0(0), AccessKind::Load); // touch 0 again — FIFO does not care
        let ev = c.access(set0(2), AccessKind::Load).evicted.unwrap();
        assert_eq!(ev.addr, set0(0), "FIFO evicts the oldest fill");
    }

    #[test]
    fn resident_lines_counts_valid_blocks() {
        let mut c = tiny();
        assert!(c.resident_lines().is_empty());
        c.access(Addr(0), AccessKind::Load);
        c.access(Addr(64), AccessKind::Load);
        let mut lines = c.resident_lines();
        lines.sort();
        assert_eq!(lines, vec![Addr(0), Addr(64)]);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(Addr(0), AccessKind::Load); // set 0
        c.access(Addr(64), AccessKind::Load); // set 1
        c.access(Addr(128), AccessKind::Load); // set 0
        c.access(Addr(192), AccessKind::Load); // set 1
        assert_eq!(c.stats().evictions, 0, "4 blocks fit in 2 sets x 2 ways");
    }
}
