//! Cache geometry and replacement configuration.
//!
//! Geometry checking is typed: [`CacheConfig::try_validate`] returns a
//! [`Geometry`] — the precomputed mask/shift form of a valid
//! configuration — or a [`GeometryError`] naming the violated
//! invariant. The panicking [`CacheConfig::validate`] and the per-address
//! helpers are thin wrappers over it, so the invariants live in exactly
//! one place and the hot paths index with shifts and masks instead of
//! re-deriving (and re-asserting) set counts per access.

use std::fmt;

use serde::{Deserialize, Serialize};

use ltc_trace::Addr;

/// A rejected cache geometry, naming the invariant it violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Capacity, associativity or line size is zero.
    ZeroDimension,
    /// The line size is not a power of two.
    LineSizeNotPowerOfTwo {
        /// The offending line size.
        line_bytes: u64,
    },
    /// Capacity does not divide evenly by `ways * line_bytes`.
    CapacityNotDivisible {
        /// The configured capacity.
        total_bytes: u64,
        /// `ways * line_bytes`, which must divide it.
        way_bytes: u64,
    },
    /// The derived set count is not a power of two, so set selection
    /// cannot be a mask.
    SetsNotPowerOfTwo {
        /// The derived (non-power-of-two) set count.
        sets: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDimension => {
                write!(f, "capacity, ways and line size must all be non-zero")
            }
            GeometryError::LineSizeNotPowerOfTwo { line_bytes } => {
                write!(f, "line size must be a power of two (got {line_bytes})")
            }
            GeometryError::CapacityNotDivisible { total_bytes, way_bytes } => {
                write!(
                    f,
                    "capacity must divide evenly into sets \
                     ({total_bytes} B is not a multiple of {way_bytes} B per way-row)"
                )
            }
            GeometryError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count must be a power of two (got {sets})")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// The mask/shift form of a validated [`CacheConfig`].
///
/// Existence of a `Geometry` proves the invariants hold: line size and
/// set count are powers of two, so set selection is `line & set_mask`
/// and the tag is `line >> set_bits` — no division on the access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of sets (a power of two).
    pub sets: u64,
    /// `log2(sets)`: how far the tag sits above the set index.
    pub set_bits: u32,
    /// `sets - 1`, for masking line numbers into set indices.
    pub set_mask: u64,
    /// `log2(line_bytes)`: shift from address to line number.
    pub line_shift: u32,
}

impl Geometry {
    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> u64 {
        (addr.0 >> self.line_shift) & self.set_mask
    }

    /// Tag for an address (the line-number bits above the set index).
    #[inline]
    pub fn tag(&self, addr: Addr) -> u64 {
        (addr.0 >> self.line_shift) >> self.set_bits
    }

    /// Reconstructs the line base address from a `(set, tag)` pair.
    #[inline]
    pub fn line_addr(&self, set: u64, tag: u64) -> Addr {
        Addr(((tag << self.set_bits) | set) << self.line_shift)
    }
}

/// Replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the hierarchy caches in Table 1).
    Lru,
    /// First-in-first-out (used by the LT-cords signature cache, Section 4.3).
    Fifo,
}

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use ltc_cache::CacheConfig;
///
/// let l1 = CacheConfig::l1d();
/// assert_eq!(l1.sets(), 512); // 64 KB / 64 B / 2 ways
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub total_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64 KB, 64-byte lines, 2-way, LRU (Table 1).
    pub fn l1d() -> Self {
        CacheConfig {
            total_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The paper's unified L2: 1 MB, 64-byte lines, 8-way, LRU (Table 1).
    pub fn l2() -> Self {
        CacheConfig {
            total_bytes: 1 << 20,
            ways: 8,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The enlarged 4 MB L2 used as a baseline in Table 3 (same latency
    /// assumed, conservatively favouring the big cache).
    pub fn l2_4mb() -> Self {
        CacheConfig { total_bytes: 4 << 20, ..CacheConfig::l2() }
    }

    /// Checks the invariants and returns the mask/shift [`Geometry`].
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when any of: capacity, ways or line
    /// size is zero; line size or the derived set count is not a power
    /// of two; or capacity is not divisible by `ways * line_bytes`.
    pub fn try_validate(&self) -> Result<Geometry, GeometryError> {
        if self.total_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(GeometryError::ZeroDimension);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(GeometryError::LineSizeNotPowerOfTwo { line_bytes: self.line_bytes });
        }
        let way_bytes = self.line_bytes * u64::from(self.ways);
        if self.total_bytes % way_bytes != 0 {
            return Err(GeometryError::CapacityNotDivisible {
                total_bytes: self.total_bytes,
                way_bytes,
            });
        }
        let sets = self.total_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo { sets });
        }
        Ok(Geometry {
            sets,
            set_bits: sets.trailing_zeros(),
            set_mask: sets - 1,
            line_shift: self.line_bytes.trailing_zeros(),
        })
    }

    /// The mask/shift geometry, with validity debug-asserted only: release
    /// callers on the hot path skip re-validation (constructors such as
    /// [`crate::Cache::new`] already rejected bad configurations).
    #[inline]
    pub fn geometry(&self) -> Geometry {
        debug_assert!(self.try_validate().is_ok(), "{:?}", self.try_validate());
        let sets = self.total_bytes / (self.line_bytes * u64::from(self.ways));
        Geometry {
            sets,
            set_bits: sets.trailing_zeros(),
            set_mask: sets.wrapping_sub(1),
            line_shift: self.line_bytes.trailing_zeros(),
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if the configuration is not
    /// self-consistent — see [`CacheConfig::try_validate`].
    #[inline]
    pub fn sets(&self) -> u64 {
        self.geometry().sets
    }

    /// Checks the invariants of the geometry, panicking on violation.
    ///
    /// Prefer [`CacheConfig::try_validate`] where the caller can surface
    /// a typed error instead.
    ///
    /// # Panics
    ///
    /// Panics with the [`GeometryError`] display message if any of:
    /// capacity, ways or line size is zero; line size or set count is
    /// not a power of two; or capacity is not divisible by
    /// `ways * line_bytes`.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> u64 {
        self.geometry().set_index(addr)
    }

    /// Tag for an address (the line number bits above the set index).
    #[inline]
    pub fn tag(&self, addr: Addr) -> u64 {
        self.geometry().tag(addr)
    }

    /// Reconstructs the line base address from a `(set, tag)` pair.
    #[inline]
    pub fn line_addr(&self, set: u64, tag: u64) -> Addr {
        self.geometry().line_addr(set, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let c = CacheConfig::l1d();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.line_bytes, 64);
    }

    #[test]
    fn paper_l2_geometry() {
        let c = CacheConfig::l2();
        assert_eq!(c.sets(), 2048);
        let big = CacheConfig::l2_4mb();
        assert_eq!(big.sets(), 8192);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let c = CacheConfig::l1d();
        let a = Addr(0xdead_beef);
        let set = c.set_index(a);
        let tag = c.tag(a);
        assert!(set < c.sets());
        assert_eq!(c.line_addr(set, tag), a.line(64));
    }

    #[test]
    fn adjacent_lines_map_to_adjacent_sets() {
        let c = CacheConfig::l1d();
        let s0 = c.set_index(Addr(0));
        let s1 = c.set_index(Addr(64));
        assert_eq!(s1, s0 + 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        CacheConfig { line_bytes: 48, ..CacheConfig::l1d() }.validate();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_capacity() {
        CacheConfig { total_bytes: 100_000, ..CacheConfig::l1d() }.validate();
    }

    #[test]
    fn try_validate_accepts_paper_geometries() {
        for cfg in [CacheConfig::l1d(), CacheConfig::l2(), CacheConfig::l2_4mb()] {
            let g = cfg.try_validate().expect("paper geometry is valid");
            assert_eq!(g.sets, cfg.sets());
            assert_eq!(g.set_mask, g.sets - 1);
            assert_eq!(1u64 << g.set_bits, g.sets);
            assert_eq!(1u64 << g.line_shift, cfg.line_bytes);
        }
    }

    #[test]
    fn try_validate_rejects_each_invariant_with_typed_error() {
        let zero = CacheConfig { ways: 0, ..CacheConfig::l1d() };
        assert_eq!(zero.try_validate(), Err(GeometryError::ZeroDimension));

        let odd_line = CacheConfig { line_bytes: 48, ..CacheConfig::l1d() };
        assert_eq!(
            odd_line.try_validate(),
            Err(GeometryError::LineSizeNotPowerOfTwo { line_bytes: 48 })
        );

        let uneven = CacheConfig { total_bytes: 100_000, ..CacheConfig::l1d() };
        assert_eq!(
            uneven.try_validate(),
            Err(GeometryError::CapacityNotDivisible { total_bytes: 100_000, way_bytes: 128 })
        );

        // 3 ways of 64 B lines in 48 KB: divides evenly into 256 sets…
        // with ways*line = 192 B, 48 KB / 192 B = 256 sets — power of two.
        // Use 96 KB / 64 B / 4-way = 384 sets instead: not a power of two.
        let odd_sets = CacheConfig { total_bytes: 96 << 10, ways: 4, ..CacheConfig::l1d() };
        assert_eq!(odd_sets.try_validate(), Err(GeometryError::SetsNotPowerOfTwo { sets: 384 }));
    }

    #[test]
    fn geometry_error_messages_name_the_invariant() {
        let msgs = [
            GeometryError::ZeroDimension.to_string(),
            GeometryError::LineSizeNotPowerOfTwo { line_bytes: 48 }.to_string(),
            GeometryError::CapacityNotDivisible { total_bytes: 100_000, way_bytes: 128 }
                .to_string(),
            GeometryError::SetsNotPowerOfTwo { sets: 384 }.to_string(),
        ];
        assert!(msgs[0].contains("non-zero"));
        assert!(msgs[1].contains("power of two"));
        assert!(msgs[2].contains("divide evenly"));
        assert!(msgs[3].contains("power of two"));
    }

    #[test]
    fn geometry_matches_config_helpers() {
        let cfg = CacheConfig::l1d();
        let g = cfg.try_validate().unwrap();
        let a = Addr(0xdead_beef);
        assert_eq!(g.set_index(a), cfg.set_index(a));
        assert_eq!(g.tag(a), cfg.tag(a));
        assert_eq!(g.line_addr(g.set_index(a), g.tag(a)), a.line(64));
    }

    #[test]
    fn same_set_aliases_differ_by_way_span() {
        let c = CacheConfig::l1d();
        // Two addresses one "cache way span" apart share a set.
        let span = c.sets() * c.line_bytes;
        assert_eq!(c.set_index(Addr(0x40)), c.set_index(Addr(0x40 + span)));
        assert_ne!(c.tag(Addr(0x40)), c.tag(Addr(0x40 + span)));
    }
}
