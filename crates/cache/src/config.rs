//! Cache geometry and replacement configuration.

use serde::{Deserialize, Serialize};

use ltc_trace::Addr;

/// Replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the hierarchy caches in Table 1).
    Lru,
    /// First-in-first-out (used by the LT-cords signature cache, Section 4.3).
    Fifo,
}

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use ltc_cache::CacheConfig;
///
/// let l1 = CacheConfig::l1d();
/// assert_eq!(l1.sets(), 512); // 64 KB / 64 B / 2 ways
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub total_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64 KB, 64-byte lines, 2-way, LRU (Table 1).
    pub fn l1d() -> Self {
        CacheConfig {
            total_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The paper's unified L2: 1 MB, 64-byte lines, 8-way, LRU (Table 1).
    pub fn l2() -> Self {
        CacheConfig {
            total_bytes: 1 << 20,
            ways: 8,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The enlarged 4 MB L2 used as a baseline in Table 3 (same latency
    /// assumed, conservatively favouring the big cache).
    pub fn l2_4mb() -> Self {
        CacheConfig { total_bytes: 4 << 20, ..CacheConfig::l2() }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not self-consistent (see
    /// [`CacheConfig::validate`]).
    pub fn sets(&self) -> u64 {
        self.validate();
        self.total_bytes / (self.line_bytes * u64::from(self.ways))
    }

    /// Checks the invariants of the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any of: capacity, ways or line size is zero; line size or
    /// set count is not a power of two; or capacity is not divisible by
    /// `ways * line_bytes`.
    pub fn validate(&self) {
        assert!(self.total_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let denom = self.line_bytes * u64::from(self.ways);
        assert!(self.total_bytes % denom == 0, "capacity must divide evenly into sets");
        let sets = self.total_bytes / denom;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
    }

    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> u64 {
        let line = addr.line_number(self.line_bytes);
        line & (self.sets() - 1)
    }

    /// Tag for an address (the line number bits above the set index).
    #[inline]
    pub fn tag(&self, addr: Addr) -> u64 {
        addr.line_number(self.line_bytes) >> self.sets().trailing_zeros()
    }

    /// Reconstructs the line base address from a `(set, tag)` pair.
    #[inline]
    pub fn line_addr(&self, set: u64, tag: u64) -> Addr {
        let line = (tag << self.sets().trailing_zeros()) | set;
        Addr(line * self.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let c = CacheConfig::l1d();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.line_bytes, 64);
    }

    #[test]
    fn paper_l2_geometry() {
        let c = CacheConfig::l2();
        assert_eq!(c.sets(), 2048);
        let big = CacheConfig::l2_4mb();
        assert_eq!(big.sets(), 8192);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let c = CacheConfig::l1d();
        let a = Addr(0xdead_beef);
        let set = c.set_index(a);
        let tag = c.tag(a);
        assert!(set < c.sets());
        assert_eq!(c.line_addr(set, tag), a.line(64));
    }

    #[test]
    fn adjacent_lines_map_to_adjacent_sets() {
        let c = CacheConfig::l1d();
        let s0 = c.set_index(Addr(0));
        let s1 = c.set_index(Addr(64));
        assert_eq!(s1, s0 + 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        CacheConfig { line_bytes: 48, ..CacheConfig::l1d() }.validate();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_capacity() {
        CacheConfig { total_bytes: 100_000, ..CacheConfig::l1d() }.validate();
    }

    #[test]
    fn same_set_aliases_differ_by_way_span() {
        let c = CacheConfig::l1d();
        // Two addresses one "cache way span" apart share a set.
        let span = c.sets() * c.line_bytes;
        assert_eq!(c.set_index(Addr(0x40)), c.set_index(Addr(0x40 + span)));
        assert_ne!(c.tag(Addr(0x40)), c.tag(Addr(0x40 + span)));
    }
}
