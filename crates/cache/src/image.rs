//! Serializable warm-state images for caches and hierarchies.
//!
//! A warm image is a faithful snapshot of a simulated cache's mutable
//! state — tag array, state bytes, replacement stamps, sequence counter
//! and counters — plus the [`CacheConfig`] it was captured under.
//! Restoring an image into a freshly built cache reproduces the donor
//! *exactly*, so a segment worker that restores a warm image observes
//! byte-identical behaviour to one that replayed the warm-up prefix.
//!
//! Every restore is validated: the embedded config must describe a
//! buildable geometry, the restore target's config must match it, and
//! every state vector must have exactly one entry per slot. A failed
//! validation is a typed [`ImageError`] — never silent drift.

use serde::{Deserialize, Serialize};

use crate::cache::Cache;
use crate::config::{CacheConfig, GeometryError};
use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::stats::CacheStats;

/// Why an image refused to restore.
///
/// Shared by every imaging surface in the workspace: cache and hierarchy
/// restores here, history-table and predictor restores in the crates
/// built on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The component does not support imaging (e.g. a predictor whose
    /// state is too entangled to snapshot); callers fall back to replay.
    Unsupported,
    /// The image's embedded configuration is not a buildable geometry.
    Geometry(GeometryError),
    /// The restore target is configured differently from the image donor.
    ConfigMismatch {
        /// The restore target's configuration (rendered via `Debug`).
        expected: String,
        /// The image donor's configuration (rendered via `Debug`).
        found: String,
    },
    /// A state vector's length disagrees with the configured slot count.
    Shape {
        /// Which vector was malformed.
        field: &'static str,
        /// Entries the configuration demands.
        expected: usize,
        /// Entries the image carried.
        found: usize,
    },
    /// The image was captured from a different component kind.
    Kind {
        /// The restore target's kind.
        expected: String,
        /// The image donor's kind.
        found: String,
    },
    /// Any other malformed field (out-of-range counter, bad invariant).
    Invalid(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Unsupported => write!(f, "component does not support state images"),
            ImageError::Geometry(e) => write!(f, "image carries an invalid geometry: {e}"),
            ImageError::ConfigMismatch { expected, found } => {
                write!(f, "image config {found} does not match restore target {expected}")
            }
            ImageError::Shape { field, expected, found } => {
                write!(f, "image field `{field}` has {found} entries, geometry demands {expected}")
            }
            ImageError::Kind { expected, found } => {
                write!(f, "image of kind {found} cannot restore into {expected}")
            }
            ImageError::Invalid(msg) => write!(f, "invalid image: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Snapshot of one [`Cache`]'s complete mutable state.
///
/// The parallel vectors mirror the cache's struct-of-arrays tag array
/// (one entry per `set * ways + way` slot); the private replacement
/// stamps are split into `fill`/`touch` halves so the image stays a
/// plain named-field struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheImage {
    /// Geometry the donor was built with (restore targets must match).
    pub config: CacheConfig,
    /// Per-slot tags.
    pub tags: Vec<u64>,
    /// Per-slot state bytes (valid/dirty/pending bits).
    pub state: Vec<u8>,
    /// Per-slot fill stamps.
    pub fill: Vec<u32>,
    /// Per-slot last-touch stamps.
    pub touch: Vec<u32>,
    /// Access sequence counter at capture time.
    pub seq: u64,
    /// Counters accumulated up to capture time.
    pub stats: CacheStats,
}

impl CacheImage {
    /// Bytes of simulated state the image carries: 17 bytes per slot
    /// (8 tag + 1 state + 4 + 4 stamps) plus the fixed header (config,
    /// sequence counter and the eight `u64` counters).
    pub fn image_bytes(&self) -> u64 {
        self.tags.len() as u64 * 17 + 96
    }
}

/// Snapshot of a two-level [`Hierarchy`]: one [`CacheImage`] per level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyImage {
    /// L1 data cache snapshot.
    pub l1: CacheImage,
    /// Unified L2 snapshot.
    pub l2: CacheImage,
}

impl HierarchyImage {
    /// The hierarchy configuration the image was captured under.
    pub fn config(&self) -> HierarchyConfig {
        HierarchyConfig { l1: self.l1.config, l2: self.l2.config }
    }

    /// Total simulated-state bytes across both levels.
    pub fn image_bytes(&self) -> u64 {
        self.l1.image_bytes() + self.l2.image_bytes()
    }
}

impl Cache {
    /// Snapshots the cache's complete mutable state.
    pub fn to_image(&self) -> CacheImage {
        self.image()
    }

    /// Rebuilds a cache from `image`, validating geometry, vector shapes
    /// and the sequence counter.
    ///
    /// # Errors
    ///
    /// [`ImageError::Geometry`] when the embedded config cannot build;
    /// [`ImageError::Shape`] when a state vector's length disagrees with
    /// the slot count; [`ImageError::Invalid`] when the sequence counter
    /// is outside the stamp range.
    pub fn from_image(image: &CacheImage) -> Result<Cache, ImageError> {
        Cache::restore_image(image)
    }
}

impl Hierarchy {
    /// Snapshots both levels.
    pub fn to_image(&self) -> HierarchyImage {
        HierarchyImage { l1: self.l1().to_image(), l2: self.l2().to_image() }
    }

    /// Rebuilds a hierarchy from `image`, refusing images captured under
    /// a different configuration than `cfg`.
    ///
    /// # Errors
    ///
    /// [`ImageError::ConfigMismatch`] when `cfg` differs from the image's
    /// embedded configs, plus every per-level error of
    /// [`Cache::from_image`].
    pub fn from_image(cfg: HierarchyConfig, image: &HierarchyImage) -> Result<Self, ImageError> {
        if image.config() != cfg {
            return Err(ImageError::ConfigMismatch {
                expected: format!("{cfg:?}"),
                found: format!("{:?}", image.config()),
            });
        }
        Ok(Hierarchy::from_levels(Cache::from_image(&image.l1)?, Cache::from_image(&image.l2)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementPolicy;
    use ltc_trace::{AccessKind, Addr};

    fn warmed(cfg: HierarchyConfig, accesses: u64) -> Hierarchy {
        let mut h = Hierarchy::new(cfg);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..accesses {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let kind = if x & 7 == 0 { AccessKind::Store } else { AccessKind::Load };
            h.access(Addr(x % (1 << 22)), kind);
        }
        h
    }

    #[test]
    fn restored_hierarchy_continues_byte_identically() {
        for cfg in [HierarchyConfig::paper(), HierarchyConfig::paper_4mb_l2()] {
            let mut original = warmed(cfg, 20_000);
            let image = original.to_image();
            let mut restored = Hierarchy::from_image(cfg, &image).unwrap();
            for i in 0..5_000u64 {
                let a = Addr((i * 2891) % (1 << 22));
                assert_eq!(
                    original.access(a, AccessKind::Load),
                    restored.access(a, AccessKind::Load),
                    "divergence at access {i}"
                );
            }
            assert_eq!(original.l1().stats(), restored.l1().stats());
            assert_eq!(original.l2().stats(), restored.l2().stats());
            assert_eq!(original.l1().seq(), restored.l1().seq());
        }
    }

    #[test]
    fn image_round_trips_through_json() {
        let h = warmed(HierarchyConfig::paper(), 5_000);
        let image = h.to_image();
        let text = serde_json::to_string(&image);
        let back = HierarchyImage::from_value(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(image, back);
    }

    #[test]
    fn config_mismatch_is_a_typed_error() {
        let image = warmed(HierarchyConfig::paper(), 100).to_image();
        let err = Hierarchy::from_image(HierarchyConfig::paper_4mb_l2(), &image).unwrap_err();
        assert!(matches!(err, ImageError::ConfigMismatch { .. }));
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn truncated_vectors_are_a_typed_error() {
        let mut image = warmed(HierarchyConfig::paper(), 100).to_image();
        image.l1.tags.pop();
        let err = Hierarchy::from_image(HierarchyConfig::paper(), &image).unwrap_err();
        assert!(matches!(err, ImageError::Shape { field: "tags", .. }), "{err}");
    }

    #[test]
    fn out_of_range_seq_is_rejected() {
        let mut image = warmed(HierarchyConfig::paper(), 100).to_image();
        image.l2.seq = u64::from(u32::MAX) + 1;
        let err = Hierarchy::from_image(HierarchyConfig::paper(), &image).unwrap_err();
        assert!(matches!(err, ImageError::Invalid(_)), "{err}");
    }

    #[test]
    fn invalid_embedded_geometry_is_rejected() {
        let mut image = warmed(HierarchyConfig::paper(), 0).to_image();
        image.l1.config.line_bytes = 48;
        let err = Cache::from_image(&image.l1).unwrap_err();
        assert!(matches!(err, ImageError::Geometry(_)), "{err}");
    }

    #[test]
    fn image_bytes_tracks_geometry() {
        // Paper hierarchy: 64 KB 2-way L1 (1024 slots) + 1 MB 8-way L2
        // (16384 slots) = 17408 slots -> ~296 KB of simulated state.
        let paper = Hierarchy::new(HierarchyConfig::paper()).to_image();
        assert_eq!(paper.image_bytes(), 17_408 * 17 + 2 * 96);
        // The largest standard config (4 MB L2) stays under 1.25 MB.
        let big = Hierarchy::new(HierarchyConfig::paper_4mb_l2()).to_image();
        assert!(big.image_bytes() > paper.image_bytes());
        assert!(big.image_bytes() < 1_250_000, "largest standard image ceiling");
    }

    #[test]
    fn fifo_policy_survives_the_round_trip() {
        let cfg = CacheConfig {
            total_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            policy: ReplacementPolicy::Fifo,
        };
        let mut c = Cache::new(cfg);
        for i in 0..200u64 {
            c.access(Addr(i * 64 * 3), AccessKind::Load);
        }
        let mut restored = Cache::from_image(&c.to_image()).unwrap();
        for i in 0..200u64 {
            assert_eq!(
                c.access(Addr(i * 64 * 5), AccessKind::Load),
                restored.access(Addr(i * 64 * 5), AccessKind::Load)
            );
        }
    }
}
