//! Per-cache counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (loads + stores).
    pub accesses: u64,
    /// Demand stores.
    pub stores: u64,
    /// Demand misses.
    pub misses: u64,
    /// Valid blocks displaced by demand fills.
    pub evictions: u64,
    /// Blocks installed by prefetch.
    pub prefetch_fills: u64,
    /// Prefetch requests that found the block already resident.
    pub prefetch_already_present: u64,
    /// First demand touches of prefetched blocks (useful prefetches).
    pub prefetch_hits: u64,
    /// Prefetched blocks evicted without ever being demand-touched.
    pub useless_prefetches: u64,
}

impl CacheStats {
    /// Demand miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of prefetch fills that were eventually demand-touched.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_fills as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_ratio() {
        let s = CacheStats { accesses: 10, misses: 3, ..CacheStats::default() };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_ratio() {
        let s = CacheStats { prefetch_fills: 4, prefetch_hits: 3, ..CacheStats::default() };
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().prefetch_accuracy(), 0.0);
    }
}
