//! Two-level cache hierarchy (L1D + unified L2).

use ltc_trace::{AccessKind, Addr};

use crate::cache::{AccessOutcome, Cache, PrefetchOutcome};
use crate::config::CacheConfig;

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Hit in the L1 data cache (2 cycles in Table 1).
    L1,
    /// Hit in the unified L2 (20 cycles).
    L2,
    /// Served from main memory (200 cycles + transfer).
    Memory,
}

/// Configuration for a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's baseline hierarchy (Table 1).
    pub fn paper() -> Self {
        HierarchyConfig { l1: CacheConfig::l1d(), l2: CacheConfig::l2() }
    }

    /// The Table 3 "4MB L2" comparison hierarchy.
    pub fn paper_4mb_l2() -> Self {
        HierarchyConfig { l1: CacheConfig::l1d(), l2: CacheConfig::l2_4mb() }
    }
}

/// Outcome of one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyOutcome {
    /// Level that served the access.
    pub level: MemLevel,
    /// L1 access detail (always present).
    pub l1: AccessOutcome,
    /// L2 access detail (present only when L1 missed).
    pub l2: Option<AccessOutcome>,
    /// Dirty write-back from L1 to L2 occurred.
    pub l1_writeback: bool,
    /// Dirty write-back from L2 to memory occurred.
    pub l2_writeback: bool,
}

/// A write-back two-level hierarchy: 64 KB L1D backed by a unified L2.
///
/// The model is *non-inclusive, mostly-inclusive in practice*: L1 misses
/// always allocate in both levels, L2 evictions do not invalidate L1 (the
/// paper's SimpleScalar baseline behaves the same way). Dirty L1 victims are
/// written back into L2, keeping write-back traffic observable for the
/// bandwidth study (Figure 12).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics with the [`crate::GeometryError`] message if either level's
    /// geometry is invalid; use [`Hierarchy::try_new`] for a typed error.
    pub fn new(cfg: HierarchyConfig) -> Self {
        match Hierarchy::try_new(cfg) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates an empty hierarchy, rejecting invalid geometry in either
    /// level as a typed [`crate::GeometryError`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (L1 checked before L2).
    pub fn try_new(cfg: HierarchyConfig) -> Result<Self, crate::GeometryError> {
        Ok(Hierarchy { l1: Cache::try_new(cfg.l1)?, l2: Cache::try_new(cfg.l2)? })
    }

    /// Assembles a hierarchy from already-restored levels (the image
    /// restore path; validation happened per level).
    pub(crate) fn from_levels(l1: Cache, l2: Cache) -> Self {
        Hierarchy { l1, l2 }
    }

    /// The L1 data cache.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Mutable access to the L1 (used by prefetchers that fill L1 directly).
    pub fn l1_mut(&mut self) -> &mut Cache {
        &mut self.l1
    }

    /// Mutable access to the L2.
    pub fn l2_mut(&mut self) -> &mut Cache {
        &mut self.l2
    }

    /// Performs one demand access through both levels.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> HierarchyOutcome {
        let l1 = self.l1.access(addr, kind);
        let mut l1_writeback = false;
        let mut l2_writeback = false;
        if l1.hit {
            return HierarchyOutcome {
                level: MemLevel::L1,
                l1,
                l2: None,
                l1_writeback,
                l2_writeback,
            };
        }
        // L1 victim write-back allocates/updates in L2.
        if let Some(ev) = &l1.evicted {
            if ev.dirty {
                l1_writeback = true;
                let wb = self.l2.access(ev.addr, AccessKind::Store);
                if let Some(l2ev) = wb.evicted {
                    l2_writeback |= l2ev.dirty;
                }
            }
        }
        let l2 = self.l2.access(addr, kind);
        if let Some(l2ev) = &l2.evicted {
            l2_writeback |= l2ev.dirty;
        }
        let level = if l2.hit { MemLevel::L2 } else { MemLevel::Memory };
        HierarchyOutcome { level, l1, l2: Some(l2), l1_writeback, l2_writeback }
    }

    /// Installs a prefetch into the L1 (and L2, where the data necessarily
    /// passes through), optionally displacing a predicted-dead victim.
    /// Returns the L1 outcome and whether the data had to come from memory.
    pub fn prefetch_into_l1(
        &mut self,
        addr: Addr,
        intended_victim: Option<Addr>,
    ) -> (PrefetchOutcome, MemLevel) {
        let from = if self.l2.contains(addr) { MemLevel::L2 } else { MemLevel::Memory };
        if from == MemLevel::Memory {
            let _ = self.l2.fill_prefetch(addr, None);
        }
        let out = self.l1.fill_prefetch(addr, intended_victim);
        // A dirty victim displaced by the prefetch is written back to L2.
        if let PrefetchOutcome::Filled { evicted: Some(ev), .. } = &out {
            if ev.dirty {
                let _ = self.l2.access(ev.addr, AccessKind::Store);
            }
        }
        (out, from)
    }

    /// Installs a prefetch into the L2 only (the GHB policy; the paper notes
    /// GHB cannot prefetch into L1 without risking pollution, Section 5.7).
    pub fn prefetch_into_l2(&mut self, addr: Addr) -> (PrefetchOutcome, MemLevel) {
        let from = if self.l2.contains(addr) { MemLevel::L2 } else { MemLevel::Memory };
        (self.l2.fill_prefetch(addr, None), from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::paper())
    }

    #[test]
    fn try_new_rejects_bad_level_geometry() {
        let bad_l1 = HierarchyConfig {
            l1: CacheConfig { line_bytes: 48, ..CacheConfig::l1d() },
            l2: CacheConfig::l2(),
        };
        assert!(matches!(
            Hierarchy::try_new(bad_l1),
            Err(crate::GeometryError::LineSizeNotPowerOfTwo { line_bytes: 48 })
        ));
        let bad_l2 = HierarchyConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig { total_bytes: 100_000, ..CacheConfig::l2() },
        };
        assert!(matches!(
            Hierarchy::try_new(bad_l2),
            Err(crate::GeometryError::CapacityNotDivisible { .. })
        ));
        assert!(Hierarchy::try_new(HierarchyConfig::paper()).is_ok());
    }

    #[test]
    fn cold_access_reaches_memory() {
        let mut hh = h();
        let out = hh.access(Addr(0x1000), AccessKind::Load);
        assert_eq!(out.level, MemLevel::Memory);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut hh = h();
        hh.access(Addr(0x1000), AccessKind::Load);
        let out = hh.access(Addr(0x1010), AccessKind::Load);
        assert_eq!(out.level, MemLevel::L1);
        assert!(out.l2.is_none());
    }

    #[test]
    fn l2_hit_when_evicted_from_l1_only() {
        let mut hh = h();
        // L1 is 2-way x 512 sets; create 3 conflicting lines in L1 set 0.
        let span = 512 * 64;
        hh.access(Addr(0), AccessKind::Load);
        hh.access(Addr(span), AccessKind::Load);
        hh.access(Addr(2 * span), AccessKind::Load); // evicts line 0 from L1
        let out = hh.access(Addr(0), AccessKind::Load);
        assert_eq!(out.level, MemLevel::L2, "L2 is big enough to retain line 0");
    }

    #[test]
    fn dirty_l1_victim_written_back_to_l2() {
        let mut hh = h();
        let span = 512 * 64;
        hh.access(Addr(0), AccessKind::Store);
        hh.access(Addr(span), AccessKind::Load);
        let out = hh.access(Addr(2 * span), AccessKind::Load);
        assert!(out.l1_writeback, "dirty LRU victim must write back");
    }

    #[test]
    fn prefetch_into_l1_satisfies_next_access() {
        let mut hh = h();
        hh.prefetch_into_l1(Addr(0x2000), None);
        let out = hh.access(Addr(0x2000), AccessKind::Load);
        assert_eq!(out.level, MemLevel::L1);
        assert!(out.l1.first_use_of_prefetch);
    }

    #[test]
    fn prefetch_into_l2_leaves_l1_cold() {
        let mut hh = h();
        hh.prefetch_into_l2(Addr(0x3000));
        let out = hh.access(Addr(0x3000), AccessKind::Load);
        assert_eq!(out.level, MemLevel::L2, "first touch still misses L1");
    }

    #[test]
    fn prefetch_source_level_reported() {
        let mut hh = h();
        let (_, from_mem) = hh.prefetch_into_l1(Addr(0x4000), None);
        assert_eq!(from_mem, MemLevel::Memory);
        // Once in L2, a later prefetch of the same line is L2-sourced.
        let span = 512 * 64;
        hh.access(Addr(0x4000 + span), AccessKind::Load);
        hh.access(Addr(0x4000 + 2 * span), AccessKind::Load); // push 0x4000 out of L1
        let (_, from) = hh.prefetch_into_l1(Addr(0x4000), None);
        assert_eq!(from, MemLevel::L2);
    }

    #[test]
    fn four_mb_l2_retains_more() {
        let mut small = Hierarchy::new(HierarchyConfig::paper());
        let mut big = Hierarchy::new(HierarchyConfig::paper_4mb_l2());
        // Touch 2 MB of lines, then re-touch: the 1 MB L2 has evicted the
        // early lines, the 4 MB L2 has not.
        for i in 0..(2 << 20) / 64 {
            small.access(Addr(i * 64), AccessKind::Load);
            big.access(Addr(i * 64), AccessKind::Load);
        }
        let small_l2_before = small.l2().stats().misses;
        let big_l2_before = big.l2().stats().misses;
        for i in 0..(2 << 20) / 64 {
            small.access(Addr(i * 64), AccessKind::Load);
            big.access(Addr(i * 64), AccessKind::Load);
        }
        let small_new = small.l2().stats().misses - small_l2_before;
        let big_new = big.l2().stats().misses - big_l2_before;
        assert!(big_new < small_new / 4, "4MB L2 re-touch should mostly hit");
    }
}
