//! Property-based invariants of the cache model.

use ltc_cache::{Cache, CacheConfig, ReplacementPolicy};
use ltc_trace::{AccessKind, Addr};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        total_bytes: 1024,
        ways: 4,
        line_bytes: 64,
        policy: ReplacementPolicy::Lru,
    })
}

fn addr_strategy() -> impl Strategy<Value = Addr> {
    // 64 lines of address space: heavy aliasing into 4 sets x 4 ways.
    (0u64..64).prop_map(|l| Addr(l * 64))
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![Just(AccessKind::Load), Just(AccessKind::Store)]
}

proptest! {
    /// The most recently accessed line is always resident.
    #[test]
    fn mru_line_is_resident(accesses in prop::collection::vec((addr_strategy(), kind_strategy()), 1..200)) {
        let mut c = small_cache();
        for (addr, kind) in &accesses {
            c.access(*addr, *kind);
            prop_assert!(c.contains(*addr), "just-accessed line {addr} must be resident");
        }
    }

    /// No set ever holds more lines than its associativity.
    #[test]
    fn residency_bounded_by_ways(accesses in prop::collection::vec(addr_strategy(), 1..300)) {
        let mut c = small_cache();
        for addr in &accesses {
            c.access(*addr, AccessKind::Load);
        }
        let lines = c.resident_lines();
        prop_assert!(lines.len() <= 16, "4 sets x 4 ways = 16 blocks max");
        // Per-set bound.
        let mut per_set = std::collections::HashMap::new();
        for l in &lines {
            *per_set.entry(c.config().set_index(*l)).or_insert(0u32) += 1;
        }
        for (&set, &count) in &per_set {
            prop_assert!(count <= 4, "set {set} holds {count} > 4 lines");
        }
    }

    /// Accessing the same line twice back to back always hits the second time.
    #[test]
    fn repeat_access_hits(addr in addr_strategy(), warm in prop::collection::vec(addr_strategy(), 0..50)) {
        let mut c = small_cache();
        for w in &warm {
            c.access(*w, AccessKind::Load);
        }
        c.access(addr, AccessKind::Load);
        let second = c.access(addr, AccessKind::Load);
        prop_assert!(second.hit);
    }

    /// `peek_victim` always predicts exactly what the next fill evicts.
    #[test]
    fn peek_victim_is_accurate(warm in prop::collection::vec(addr_strategy(), 0..100), probe in addr_strategy()) {
        let mut c = small_cache();
        for w in &warm {
            c.access(*w, AccessKind::Load);
        }
        if c.contains(probe) {
            return Ok(()); // a hit evicts nothing
        }
        let predicted = c.peek_victim(probe);
        let ev = c.access(probe, AccessKind::Load).evicted;
        match predicted {
            Some(p) => prop_assert_eq!(ev.map(|e| e.addr), Some(p)),
            None => prop_assert!(ev.is_none(), "room in the set means no eviction"),
        }
    }

    /// Counter identities hold after any access mix.
    #[test]
    fn stats_identities(accesses in prop::collection::vec((addr_strategy(), kind_strategy()), 0..300)) {
        let mut c = small_cache();
        for (addr, kind) in &accesses {
            c.access(*addr, *kind);
        }
        let s = c.stats();
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(s.stores <= s.accesses);
        prop_assert_eq!(s.accesses as usize, accesses.len());
        // Every resident line entered via a miss: misses >= resident count.
        prop_assert!((s.misses as usize) >= c.resident_lines().len());
    }

    /// Eviction timestamps are consistent: fill <= last touch < eviction seq.
    #[test]
    fn eviction_timestamps_ordered(accesses in prop::collection::vec(addr_strategy(), 1..300)) {
        let mut c = small_cache();
        for addr in &accesses {
            let seq_before = c.seq();
            let out = c.access(*addr, AccessKind::Load);
            if let Some(ev) = out.evicted {
                prop_assert!(ev.fill_seq <= ev.last_touch_seq);
                prop_assert!(ev.last_touch_seq <= seq_before, "last touch precedes the evicting access");
            }
        }
    }

    /// FIFO and LRU agree on cold fills (both use invalid ways first).
    #[test]
    fn policies_agree_when_cache_is_cold(lines in prop::collection::vec(0u64..16, 1..16)) {
        let mk = |policy| Cache::new(CacheConfig {
            total_bytes: 1024,
            ways: 4,
            line_bytes: 64,
            policy,
        });
        let mut lru = mk(ReplacementPolicy::Lru);
        let mut fifo = mk(ReplacementPolicy::Fifo);
        let mut distinct = std::collections::HashSet::new();
        for l in &lines {
            distinct.insert(*l);
            if distinct.len() > 4 {
                break; // sets may overflow beyond this point
            }
            let a = Addr(l * 64);
            let r1 = lru.access(a, AccessKind::Load);
            let r2 = fifo.access(a, AccessKind::Load);
            prop_assert_eq!(r1.hit, r2.hit);
        }
    }
}
