//! Scaled-down versions of each paper figure, asserting shape properties.

use ltc_sim::analysis::{CorrelationAnalysis, DeadTimeTracker, LastTouchOrderAnalysis};
use ltc_sim::core::LtCordsConfig;
use ltc_sim::experiment::{run_coverage as cov, PredictorKind};
use ltc_sim::trace::suite;

/// Figure 2: most dead times dwarf the memory latency.
#[test]
fn fig2_dead_times_exceed_memory_latency() {
    let mut src = suite::by_name("swim").unwrap().build(1);
    let d = DeadTimeTracker::run(&mut src, 400_000);
    assert!(d.evictions > 10_000);
    // 200-cycle memory latency at ~1.5 IPC is ~300 instructions.
    assert!(
        d.fraction_longer_than(300) > 0.8,
        "dead times must be long, got {:.2}",
        d.fraction_longer_than(300)
    );
}

/// Figure 4: DBCP coverage grows monotonically (within noise) with table
/// size and saturates at the unlimited table.
#[test]
fn fig4_dbcp_size_sensitivity_shape() {
    let sizes = [40u64 << 10, 640 << 10, 10 << 20];
    let mut last = -1.0f64;
    for bytes in sizes {
        let r = cov("art", PredictorKind::DbcpBytes(bytes), 1_200_000, 1);
        assert!(
            r.coverage() >= last - 0.05,
            "coverage should not collapse as the table grows: {} at {bytes}",
            r.coverage()
        );
        last = r.coverage();
    }
    let oracle = cov("art", PredictorKind::DbcpUnlimited, 1_200_000, 1);
    assert!(oracle.coverage() + 0.05 >= last, "unlimited bounds the sweep");
}

/// Figure 6: array codes are near-perfectly correlated; hash codes are not.
/// (galgel's ~900 KB footprint recurs many times within the budget; swim's
/// 32 MB footprint would need tens of millions of accesses per pass.)
#[test]
fn fig6_correlation_separates_workload_classes() {
    let mut galgel = suite::by_name("galgel").unwrap().build(1);
    let c_galgel = CorrelationAnalysis::run(&mut galgel, 700_000);
    let mut twolf = suite::by_name("twolf").unwrap().build(1);
    let c_twolf = CorrelationAnalysis::run(&mut twolf, 700_000);
    assert!(
        c_galgel.perfect_fraction() > 0.7,
        "galgel should be near-perfectly correlated, got {:.2}",
        c_galgel.perfect_fraction()
    );
    assert!(
        c_twolf.correlated_fraction() < 0.35,
        "twolf should be mostly uncorrelated, got {:.2}",
        c_twolf.correlated_fraction()
    );
}

/// Figure 7: last-touch order reordering is real but mostly local — a
/// bounded window captures almost all of it.
#[test]
fn fig7_reordering_is_local() {
    let mut src = suite::by_name("swim").unwrap().build(1);
    let o = LastTouchOrderAnalysis::run(&mut src, 700_000);
    assert!(o.misses > 100_000);
    let at_1k = o.cdf_at(1024);
    assert!(at_1k > 0.95, "±1K must capture >95% of misses, got {at_1k:.3}");
    assert!(
        o.perfect_fraction() < 0.95,
        "interleaved arrays must show some reordering, got {:.3}",
        o.perfect_fraction()
    );
}

/// Figure 9: larger signature caches help (until saturation).
#[test]
fn fig9_signature_cache_sensitivity_shape() {
    let small =
        cov("galgel", PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(256)), 1_500_000, 1);
    let large = cov(
        "galgel",
        PredictorKind::LtCordsWith(LtCordsConfig::fig9_sweep(32 << 10)),
        1_500_000,
        1,
    );
    assert!(
        large.coverage() > small.coverage() + 0.1,
        "32K-entry cache ({:.2}) must beat 256-entry ({:.2})",
        large.coverage(),
        small.coverage()
    );
}

/// Figure 10: more off-chip storage cannot hurt, and very small storage
/// caps coverage for sequence-hungry codes. art's ~400 K signatures per
/// pass overflow a 64 K-signature store but fit an 8 M one.
#[test]
fn fig10_offchip_storage_shape() {
    let tiny =
        cov("art", PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(64 << 10)), 2_500_000, 1);
    let big =
        cov("art", PredictorKind::LtCordsWith(LtCordsConfig::fig10_sweep(8 << 20)), 2_500_000, 1);
    assert!(
        big.coverage() + 0.02 >= tiny.coverage(),
        "more storage cannot hurt: {:.2} vs {:.2}",
        big.coverage(),
        tiny.coverage()
    );
    assert!(big.coverage() > 0.2, "8M signatures should cover art, got {:.2}", big.coverage());
}

/// Figure 12: LT-cords' bus overhead is one signature per miss — small
/// relative to the 64-byte line each miss moves.
#[test]
fn fig12_bandwidth_overhead_is_modest() {
    let r = cov("swim", PredictorKind::LtCords, 1_000_000, 1);
    let data_bytes = r.base_data_bytes;
    let meta = r.traffic.total();
    assert!(data_bytes > 0);
    assert!(
        (meta as f64) < 0.35 * data_bytes as f64,
        "metadata {meta} should be well below data traffic {data_bytes}"
    );
}
