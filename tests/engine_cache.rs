//! The `ltsim run --out` contract: a second pass over the same figures
//! and cache directory produces identical tables while performing zero
//! simulations (everything is served from the `results/` artifacts).

use std::path::PathBuf;

use ltc_bench::harness;
use ltc_bench::Scale;
use ltc_sim::engine::{artifact, EngineOptions, ResultSet, RunSpec, Scheduler};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A test-sized scale: big enough for every figure to have misses to
/// classify, small enough to keep the suite fast.
fn tiny_scale() -> Scale {
    Scale { coverage_accesses: 60_000, timing_accesses: 30_000, threads: 4 }
}

#[test]
fn second_run_is_pure_cache_and_byte_identical() {
    let dir = tmp_dir("double-run");
    let scale = tiny_scale();
    // A mode mix: coverage pairs (fig08), baseline timing (table2), and
    // the staged two-wave figure (fig04).
    let figures = [
        harness::by_name("fig08").unwrap(),
        harness::by_name("table2").unwrap(),
        harness::by_name("fig04").unwrap(),
    ];
    let opts = EngineOptions::cached(4, &dir);

    let mut first = ResultSet::new();
    harness::collect(&figures, scale, &opts, &mut first).unwrap();
    assert!(first.simulated() > 0, "first pass must simulate");
    assert_eq!(first.cache_hits(), 0, "cold cache has nothing to offer");
    let tables_first: Vec<String> = figures.iter().map(|def| (def.render)(scale, &first)).collect();

    let mut second = ResultSet::new();
    harness::collect(&figures, scale, &opts, &mut second).unwrap();
    assert_eq!(second.simulated(), 0, "second pass must perform no simulations");
    assert_eq!(second.cache_hits(), first.simulated(), "every run must come from the cache");
    let tables_second: Vec<String> =
        figures.iter().map(|def| (def.render)(scale, &second)).collect();
    assert_eq!(tables_first, tables_second, "cached tables must be byte-identical");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn render_path_reads_cache_without_simulating() {
    let dir = tmp_dir("render");
    let scale = tiny_scale();
    let figures = [harness::by_name("fig02").unwrap()];

    // Rendering from an empty cache must report what is missing rather
    // than quietly recomputing.
    let mut empty = ResultSet::new();
    let missing = harness::load_cached(&figures, scale, &dir, &mut empty).unwrap();
    assert!(!missing.is_empty(), "an empty cache cannot satisfy fig02");

    let mut computed = ResultSet::new();
    harness::collect(&figures, scale, &EngineOptions::cached(4, &dir), &mut computed).unwrap();

    let mut rendered = ResultSet::new();
    let missing = harness::load_cached(&figures, scale, &dir, &mut rendered).unwrap();
    assert!(missing.is_empty(), "everything fig02 needs is now cached");
    assert_eq!(rendered.simulated(), 0);
    assert_eq!(
        (figures[0].render)(scale, &rendered),
        (figures[0].render)(scale, &computed),
        "render-from-cache must match render-from-simulation"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Segmented-run cache-key regression: `--segments 4` and `--segments 8`
/// runs of the same benchmark/budget must occupy disjoint artifact
/// slots — parents and every per-segment child — so neither pass can
/// serve (or clobber) the other's files, while a repeat of either pass
/// is pure cache.
#[test]
fn segment_counts_never_collide_in_the_artifact_cache() {
    let dir = tmp_dir("segments");
    let opts = EngineOptions::cached(4, &dir);
    let four = RunSpec::stream_segmented("mcf", 64 << 10, 4, 8_000, 1);
    let eight = RunSpec::stream_segmented("mcf", 64 << 10, 8, 8_000, 1);

    let mut sched = Scheduler::new();
    sched.request(four.clone());
    let first = sched.execute(&opts).unwrap();
    assert_eq!(first.simulated(), 4);

    // The 8-way run shares nothing with the 4-way artifacts: all eight
    // slices (and the parent) must simulate fresh.
    let mut sched8 = Scheduler::new();
    sched8.request(eight.clone());
    let second = sched8.execute(&opts).unwrap();
    assert_eq!(second.simulated(), 8, "a different segment count is a different experiment");
    assert_eq!(second.cache_hits(), 0);

    // Both parents now stand side by side in the cache, each serving its
    // own repeat pass untouched by the other.
    for parent in [&four, &eight] {
        assert!(artifact::load(&dir, parent).unwrap().is_some());
        let mut again = Scheduler::new();
        again.request(parent.clone());
        let repeat = again.execute(&opts).unwrap();
        assert_eq!(repeat.simulated(), 0, "repeat pass must be pure cache");
        assert_eq!(repeat.cache_hits(), 1);
    }
    // Every artifact file is distinct: 4 + 8 children plus 2 parents.
    // (The shared checkpoint/warm-image store is a subdirectory, not an
    // artifact — only plain files are artifact slots.)
    let files = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_type().unwrap().is_file())
        .count();
    assert_eq!(files, 14, "parents and children must all key separately");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn staged_figure_converges_through_cache_rounds() {
    let dir = tmp_dir("staged");
    let scale = tiny_scale();
    let fig04 = [harness::by_name("fig04").unwrap()];
    let opts = EngineOptions::cached(4, &dir);

    let mut results = ResultSet::new();
    harness::collect(&fig04, scale, &opts, &mut results).unwrap();
    let first_total = results.simulated();
    assert!(first_total > 28, "wave two (finite tables) must have run");

    // The cached render path walks the same two waves.
    let mut cached = ResultSet::new();
    let missing = harness::load_cached(&fig04, scale, &dir, &mut cached).unwrap();
    assert!(missing.is_empty());
    assert_eq!(cached.len(), results.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
