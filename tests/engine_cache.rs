//! The `ltsim run --out` contract: a second pass over the same figures
//! and cache directory produces identical tables while performing zero
//! simulations (everything is served from the `results/` artifacts).

use std::path::PathBuf;

use ltc_bench::harness;
use ltc_bench::Scale;
use ltc_sim::engine::{EngineOptions, ResultSet};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltc-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A test-sized scale: big enough for every figure to have misses to
/// classify, small enough to keep the suite fast.
fn tiny_scale() -> Scale {
    Scale { coverage_accesses: 60_000, timing_accesses: 30_000, threads: 4 }
}

#[test]
fn second_run_is_pure_cache_and_byte_identical() {
    let dir = tmp_dir("double-run");
    let scale = tiny_scale();
    // A mode mix: coverage pairs (fig08), baseline timing (table2), and
    // the staged two-wave figure (fig04).
    let figures = [
        harness::by_name("fig08").unwrap(),
        harness::by_name("table2").unwrap(),
        harness::by_name("fig04").unwrap(),
    ];
    let opts = EngineOptions::cached(4, &dir);

    let mut first = ResultSet::new();
    harness::collect(&figures, scale, &opts, &mut first).unwrap();
    assert!(first.simulated() > 0, "first pass must simulate");
    assert_eq!(first.cache_hits(), 0, "cold cache has nothing to offer");
    let tables_first: Vec<String> = figures.iter().map(|def| (def.render)(scale, &first)).collect();

    let mut second = ResultSet::new();
    harness::collect(&figures, scale, &opts, &mut second).unwrap();
    assert_eq!(second.simulated(), 0, "second pass must perform no simulations");
    assert_eq!(second.cache_hits(), first.simulated(), "every run must come from the cache");
    let tables_second: Vec<String> =
        figures.iter().map(|def| (def.render)(scale, &second)).collect();
    assert_eq!(tables_first, tables_second, "cached tables must be byte-identical");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn render_path_reads_cache_without_simulating() {
    let dir = tmp_dir("render");
    let scale = tiny_scale();
    let figures = [harness::by_name("fig02").unwrap()];

    // Rendering from an empty cache must report what is missing rather
    // than quietly recomputing.
    let mut empty = ResultSet::new();
    let missing = harness::load_cached(&figures, scale, &dir, &mut empty).unwrap();
    assert!(!missing.is_empty(), "an empty cache cannot satisfy fig02");

    let mut computed = ResultSet::new();
    harness::collect(&figures, scale, &EngineOptions::cached(4, &dir), &mut computed).unwrap();

    let mut rendered = ResultSet::new();
    let missing = harness::load_cached(&figures, scale, &dir, &mut rendered).unwrap();
    assert!(missing.is_empty(), "everything fig02 needs is now cached");
    assert_eq!(rendered.simulated(), 0);
    assert_eq!(
        (figures[0].render)(scale, &rendered),
        (figures[0].render)(scale, &computed),
        "render-from-cache must match render-from-simulation"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn staged_figure_converges_through_cache_rounds() {
    let dir = tmp_dir("staged");
    let scale = tiny_scale();
    let fig04 = [harness::by_name("fig04").unwrap()];
    let opts = EngineOptions::cached(4, &dir);

    let mut results = ResultSet::new();
    harness::collect(&fig04, scale, &opts, &mut results).unwrap();
    let first_total = results.simulated();
    assert!(first_total > 28, "wave two (finite tables) must have run");

    // The cached render path walks the same two waves.
    let mut cached = ResultSet::new();
    let missing = harness::load_cached(&fig04, scale, &dir, &mut cached).unwrap();
    assert!(missing.is_empty());
    assert_eq!(cached.len(), results.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
