//! End-to-end pipeline tests: suite workloads through predictors.

use ltc_sim::analysis::{run_coverage, CoverageConfig};
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::experiment::{run_coverage as cov, PredictorKind};
use ltc_sim::predictors::Prefetcher;
use ltc_sim::trace::{suite, TraceSource};

/// A strongly recurring workload must reach high LT-cords coverage once
/// trained (the paper's central claim).
#[test]
fn recurring_workload_reaches_high_coverage() {
    // galgel: ~900 KB footprint, dense sweeps, perfectly recurring. Small
    // enough to see many passes within the access budget.
    let r = cov("galgel", PredictorKind::LtCords, 1_200_000, 1);
    assert!(
        r.coverage() > 0.5,
        "recurring sweeps should reach >50% coverage, got {:.2}",
        r.coverage()
    );
}

/// A hash/random workload must stay near zero coverage — and, critically,
/// must not be *hurt* (the paper: "LT-cords does not adversely affect
/// performance of these benchmarks").
#[test]
fn random_workload_is_not_hurt() {
    let r = cov("twolf", PredictorKind::LtCords, 600_000, 1);
    assert!(r.coverage() < 0.25, "twolf has little correlation, got {:.2}", r.coverage());
    assert!(r.early_pct() < 0.05, "early evictions must stay negligible, got {:.3}", r.early_pct());
}

/// LT-cords must approach the unlimited-storage DBCP oracle on recurring
/// workloads (Figure 8's headline comparison).
#[test]
fn ltcords_tracks_unlimited_dbcp() {
    let lt = cov("galgel", PredictorKind::LtCords, 1_200_000, 1);
    let oracle = cov("galgel", PredictorKind::DbcpUnlimited, 1_200_000, 1);
    assert!(oracle.coverage() > 0.5, "oracle must cover galgel");
    assert!(
        lt.coverage() > oracle.coverage() * 0.7,
        "LT-cords ({:.2}) must track the oracle ({:.2})",
        lt.coverage(),
        oracle.coverage()
    );
}

/// GHB must beat LT-cords on regular-layout, low-reuse codes (gap) while
/// LT-cords must dominate on irregular pointer chases (em3d) — the paper's
/// Section 5.7 crossover.
#[test]
fn ghb_and_ltcords_crossover() {
    let lt_gap = cov("gap", PredictorKind::LtCords, 600_000, 1);
    let ghb_gap = cov("gap", PredictorKind::Ghb, 600_000, 1);
    assert!(
        ghb_gap.l2_coverage() > lt_gap.l2_coverage() + 0.3,
        "gap: GHB {:.2} must beat LT-cords {:.2} off chip",
        ghb_gap.l2_coverage(),
        lt_gap.l2_coverage()
    );

    let lt_em3d = cov("em3d", PredictorKind::LtCords, 2_000_000, 1);
    let ghb_em3d = cov("em3d", PredictorKind::Ghb, 2_000_000, 1);
    assert!(
        lt_em3d.coverage() > ghb_em3d.coverage() + 0.3,
        "em3d: LT-cords {:.2} must beat GHB {:.2}",
        lt_em3d.coverage(),
        ghb_em3d.coverage()
    );
}

/// The whole suite must run without panicking and produce sane reports.
#[test]
fn entire_suite_runs_under_ltcords() {
    for entry in suite::benchmarks() {
        let r = cov(entry.name, PredictorKind::LtCords, 60_000, 1);
        // The first quarter of the budget is warm-up.
        assert_eq!(r.accesses, 45_000, "{}", entry.name);
        let sum = r.correct + r.incorrect + r.train();
        assert_eq!(sum, r.base_l1_misses, "{}: identity violated", entry.name);
        assert!(r.coverage() <= 1.0, "{}", entry.name);
    }
}

/// Deterministic reproduction: same benchmark, seed and budget give
/// byte-identical reports.
#[test]
fn coverage_runs_are_deterministic() {
    let a = cov("mcf", PredictorKind::LtCords, 150_000, 9);
    let b = cov("mcf", PredictorKind::LtCords, 150_000, 9);
    assert_eq!(a.correct, b.correct);
    assert_eq!(a.base_l1_misses, b.base_l1_misses);
    assert_eq!(a.traffic, b.traffic);
}

/// The on-chip budget of the paper configuration stays ~214 KB while the
/// oracle DBCP's table grows with the workload (the paper's Figure 4 story).
#[test]
fn on_chip_storage_stays_bounded() {
    let entry = suite::by_name("swim").unwrap();
    let mut source = entry.build(1);
    let mut lt = LtCords::new(LtCordsConfig::paper());
    let before = lt.storage_bytes();
    let _ = run_coverage(&mut source, &mut lt, CoverageConfig::paper(600_000));
    assert_eq!(lt.storage_bytes(), before, "on-chip budget must not grow");

    let mut source = entry.build(1);
    let mut oracle = PredictorKind::DbcpUnlimited.build();
    let _ = run_coverage(&mut source, oracle.as_mut(), CoverageConfig::paper(600_000));
    assert!(
        oracle.storage_bytes() > lt.storage_bytes() * 4,
        "oracle table ({} B) must dwarf LT-cords on-chip state ({} B)",
        oracle.storage_bytes(),
        lt.storage_bytes()
    );
}

/// Suite generators keep producing accesses indefinitely (unbounded loops).
#[test]
fn generators_are_unbounded() {
    for name in ["swim", "mcf", "gcc", "bh"] {
        let mut src = suite::by_name(name).unwrap().build(5);
        for i in 0..10_000 {
            assert!(src.next_access().is_some(), "{name} ended at {i}");
        }
    }
}
