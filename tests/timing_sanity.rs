//! Timing-model ordering properties underlying Table 3.

use ltc_sim::experiment::{run_timing, PredictorKind};

/// Perfect L1 bounds every other configuration from above.
#[test]
fn perfect_l1_dominates() {
    for bench in ["mcf", "swim", "gcc"] {
        let base = run_timing(bench, PredictorKind::Baseline, 150_000, 1);
        let ideal = run_timing(bench, PredictorKind::PerfectL1, 150_000, 1);
        let lt = run_timing(bench, PredictorKind::LtCords, 150_000, 1);
        assert!(
            ideal.ipc() >= base.ipc(),
            "{bench}: perfect {:.3} < base {:.3}",
            ideal.ipc(),
            base.ipc()
        );
        assert!(
            ideal.ipc() * 1.05 >= lt.ipc(),
            "{bench}: perfect L1 must bound LT-cords ({:.3} vs {:.3})",
            ideal.ipc(),
            lt.ipc()
        );
    }
}

/// Memory-bound codes have far lower IPC than cache-resident codes
/// (the Table 2 IPC spread).
#[test]
fn ipc_spread_matches_table_2_shape() {
    let mcf = run_timing("mcf", PredictorKind::Baseline, 150_000, 1);
    let crafty = run_timing("crafty", PredictorKind::Baseline, 150_000, 1);
    let mesa = run_timing("mesa", PredictorKind::Baseline, 150_000, 1);
    assert!(
        mcf.ipc() < crafty.ipc() / 4.0,
        "mcf ({:.3}) must be far slower than crafty ({:.3})",
        mcf.ipc(),
        crafty.ipc()
    );
    assert!(mesa.ipc() > 2.0, "mesa should run near issue bound, got {:.3}", mesa.ipc());
}

/// The pointer-chasing benchmarks have the largest perfect-L1 opportunity
/// (mcf's 1637% in Table 3 dwarfs everything else).
#[test]
fn pointer_chasing_has_biggest_opportunity() {
    let mcf_base = run_timing("mcf", PredictorKind::Baseline, 150_000, 1);
    let mcf_ideal = run_timing("mcf", PredictorKind::PerfectL1, 150_000, 1);
    let gzip_base = run_timing("gzip", PredictorKind::Baseline, 150_000, 1);
    let gzip_ideal = run_timing("gzip", PredictorKind::PerfectL1, 150_000, 1);
    let mcf_gain = mcf_ideal.speedup_pct_over(&mcf_base);
    let gzip_gain = gzip_ideal.speedup_pct_over(&gzip_base);
    assert!(
        mcf_gain > gzip_gain * 3.0,
        "mcf opportunity ({mcf_gain:.0}%) must dwarf gzip's ({gzip_gain:.0}%)"
    );
}

/// A 4 MB L2 helps L2-capacity-bound codes but not tiny or enormous
/// working sets (Table 3's "4MB L2" row).
#[test]
fn big_l2_helps_capacity_bound_codes() {
    // twolf: 512 KB random working set; a bigger L2 keeps it resident.
    let twolf_base = run_timing("twolf", PredictorKind::Baseline, 300_000, 1);
    let twolf_big = run_timing("twolf", PredictorKind::BigL2, 300_000, 1);
    assert!(
        twolf_big.l2_misses <= twolf_base.l2_misses,
        "bigger L2 cannot increase twolf's off-chip misses"
    );

    // crafty: fits in L1; the L2 size is irrelevant.
    let crafty_base = run_timing("crafty", PredictorKind::Baseline, 150_000, 1);
    let crafty_big = run_timing("crafty", PredictorKind::BigL2, 150_000, 1);
    let delta = crafty_big.speedup_pct_over(&crafty_base).abs();
    assert!(delta < 5.0, "crafty must be insensitive to L2 size, got {delta:.1}%");
}

/// LT-cords improves a trained pointer-chasing workload (the headline).
#[test]
fn ltcords_speeds_up_pointer_chase() {
    // Longer run so LT-cords trains; em3d recurs exactly.
    let base = run_timing("em3d", PredictorKind::Baseline, 2_500_000, 1);
    let lt = run_timing("em3d", PredictorKind::LtCords, 2_500_000, 1);
    assert!(
        lt.speedup_pct_over(&base) > 20.0,
        "em3d LT-cords speedup {:.1}% too small (IPC {:.3} vs {:.3})",
        lt.speedup_pct_over(&base),
        lt.ipc(),
        base.ipc()
    );
}

/// Timing runs are deterministic.
#[test]
fn timing_is_deterministic() {
    let a = run_timing("gcc", PredictorKind::LtCords, 120_000, 3);
    let b = run_timing("gcc", PredictorKind::LtCords, 120_000, 3);
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
    assert_eq!(a.l1_misses, b.l1_misses);
}

/// Bandwidth accounting: LT-cords metadata traffic appears in its bandwidth
/// breakdown and not in the baseline's.
#[test]
fn bandwidth_breakdown_attributes_traffic() {
    let base = run_timing("swim", PredictorKind::Baseline, 300_000, 1);
    let lt = run_timing("swim", PredictorKind::LtCords, 300_000, 1);
    assert_eq!(base.bandwidth.sequence_creation_bytes, 0);
    assert_eq!(base.bandwidth.sequence_fetch_bytes, 0);
    assert!(lt.bandwidth.sequence_creation_bytes > 0);
    assert!(lt.bandwidth.base_data_bytes > 0, "demand traffic must appear alongside metadata");
}
