//! Multi-programmed execution (paper Section 5.5, Figure 11).

use ltc_sim::analysis::{CoverageConfig, CoverageReport};
use ltc_sim::cache::Hierarchy;
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::predictors::{PrefetchLevel, Prefetcher};
use ltc_sim::trace::{suite, MultiProgram};

/// Scaled LT-cords configuration for the multi-programmed tests: the paper's
/// 60 M-instruction quanta span hundreds of 8 K-signature fragments; our
/// scaled quanta must keep that ratio, so fragments shrink proportionally
/// (otherwise every fragment would mix both programs' sequences, which the
/// real machine essentially never does).
fn multiprog_config() -> LtCordsConfig {
    LtCordsConfig { fragment_len: 1 << 10, frames: 1 << 13, ..LtCordsConfig::paper() }
}

/// Runs two context-switched programs over one shared LT-cords instance and
/// returns the focus program's (program 0) coverage.
fn multiprog_coverage(a: &str, b: &str, total_accesses: u64) -> f64 {
    let ea = suite::by_name(a).expect("benchmark exists");
    let eb = suite::by_name(b).expect("benchmark exists");
    let qa = if ea.is_fp() { 1_200_000 } else { 600_000 };
    let qb = if eb.is_fp() { 1_200_000 } else { 600_000 };
    let mut multi = MultiProgram::new(vec![(ea.build(1), qa, 0), (eb.build(2), qb, 1 << 40)]);

    // A per-program shadow-baseline coverage run (the generic driver cannot
    // attribute misses to programs, so this test drives the loop itself).
    let cfg = CoverageConfig::paper(total_accesses);
    let mut base = Hierarchy::new(cfg.hierarchy);
    let mut pf = Hierarchy::new(cfg.hierarchy);
    let mut lt = LtCords::new(multiprog_config());
    let mut requests = Vec::new();
    let (mut base_misses_a, mut eliminated_a) = (0u64, 0u64);
    for _ in 0..total_accesses {
        let Some((prog, acc)) = multi.next_tagged() else { break };
        let b_out = base.access(acc.addr, acc.kind);
        let p_out = pf.access(acc.addr, acc.kind);
        if prog == 0 {
            base_misses_a += u64::from(!b_out.l1.hit);
            eliminated_a += u64::from(!b_out.l1.hit && p_out.l1.hit);
        }
        lt.on_access(&acc, &p_out, &mut requests);
        for req in requests.drain(..) {
            if req.level == PrefetchLevel::L1 && !pf.l1().contains(req.target) {
                let (out, src) = pf.prefetch_into_l1(req.target, req.victim);
                lt.on_prefetch_applied(&req, &out, src);
            }
        }
    }
    assert!(base_misses_a > 0, "focus program must miss");
    eliminated_a as f64 / base_misses_a as f64
}

fn standalone_coverage(name: &str, accesses: u64) -> f64 {
    let entry = suite::by_name(name).expect("benchmark exists");
    let mut src = entry.build(1);
    let mut lt = LtCords::new(multiprog_config());
    let r: CoverageReport =
        ltc_sim::analysis::run_coverage(&mut src, &mut lt, CoverageConfig::paper(accesses));
    r.coverage()
}

/// Coverage survives context switching when predictor state persists —
/// the Figure 11 result. galgel recurs quickly, so a modest budget trains it.
#[test]
fn coverage_survives_context_switches() {
    let standalone = standalone_coverage("galgel", 1_500_000);
    // In the multi-programmed run the focus program only gets ~half the
    // accesses, so give the pair twice the budget.
    let shared = multiprog_coverage("galgel", "gzip", 3_000_000);
    assert!(standalone > 0.4, "galgel standalone coverage {standalone:.2} too low");
    assert!(
        shared > standalone * 0.6,
        "context switching should not destroy coverage: {shared:.2} vs {standalone:.2}"
    );
}

/// Address shifting keeps the programs' physical ranges disjoint.
#[test]
fn shifted_programs_do_not_alias() {
    let ea = suite::by_name("gcc").unwrap();
    let eb = suite::by_name("mcf").unwrap();
    let mut multi =
        MultiProgram::new(vec![(ea.build(1), 10_000, 0), (eb.build(1), 10_000, 1 << 40)]);
    let mut seen_a = false;
    let mut seen_b = false;
    for _ in 0..100_000 {
        let Some((prog, acc)) = multi.next_tagged() else { break };
        if prog == 0 {
            assert!(acc.addr.0 < 1 << 40, "program 0 leaked into the shifted range");
            seen_a = true;
        } else {
            assert!(acc.addr.0 >= 1 << 40, "program 1 must be shifted");
            seen_b = true;
        }
    }
    assert!(seen_a && seen_b, "both programs must run within the window");
}

/// Two memory-hungry programs sharing sequence storage degrade gracefully
/// (the paper's lucas+applu/mgrid observation), not catastrophically.
#[test]
fn heavy_pairs_share_storage() {
    let light = multiprog_coverage("swim", "gzip", 2_000_000);
    let heavy = multiprog_coverage("swim", "lucas", 2_000_000);
    // Combined sequences stress the off-chip store: pairing with another
    // sequence-hungry program cannot *improve* the focus coverage.
    assert!(
        heavy <= light + 0.1,
        "sequence-storage pressure should not help: heavy {heavy:.2} vs light {light:.2}"
    );
}
