//! Cross-predictor coverage-accounting invariants (property-style).

use ltc_sim::experiment::{run_coverage as cov, PredictorKind};
use proptest::prelude::*;

const KINDS: [PredictorKind; 5] = [
    PredictorKind::Baseline,
    PredictorKind::LtCords,
    PredictorKind::DbcpUnlimited,
    PredictorKind::Dbcp2Mb,
    PredictorKind::Ghb,
];

/// The Figure 8 identity holds for every predictor on every workload class.
#[test]
fn figure8_identity_holds_everywhere() {
    for bench in ["galgel", "twolf", "gcc", "treeadd"] {
        for kind in KINDS {
            let r = cov(bench, kind, 80_000, 1);
            assert_eq!(
                r.correct + r.incorrect + r.train(),
                r.base_l1_misses,
                "{bench}/{}: correct+incorrect+train != opportunity",
                kind.name()
            );
            assert_eq!(
                r.pf_l1_misses,
                r.base_l1_misses - r.correct + r.early,
                "{bench}/{}: miss-delta identity broken",
                kind.name()
            );
        }
    }
}

/// The baseline predictor never perturbs the hierarchy.
#[test]
fn baseline_is_inert() {
    for bench in ["swim", "gzip", "mcf"] {
        let r = cov(bench, PredictorKind::Baseline, 100_000, 1);
        assert_eq!(r.base_l1_misses, r.pf_l1_misses, "{bench}");
        assert_eq!(r.base_l2_misses, r.pf_l2_misses, "{bench}");
        assert_eq!(r.correct, 0, "{bench}");
        assert_eq!(r.early, 0, "{bench}");
        assert_eq!(r.prefetch_fills, 0, "{bench}");
        assert_eq!(r.traffic.total(), 0, "{bench}");
    }
}

/// Coverage percentages stay within meaningful ranges.
#[test]
fn percentages_are_bounded() {
    for kind in KINDS {
        let r = cov("facerec", kind, 100_000, 2);
        for (label, v) in [
            ("correct", r.correct_pct()),
            ("incorrect", r.incorrect_pct()),
            ("train", r.train_pct()),
        ] {
            assert!((0.0..=1.0).contains(&v), "{}: {label} = {v}", kind.name());
        }
        assert!(r.early_pct() >= 0.0, "{}", kind.name());
        assert!(r.coverage() <= 1.0, "{}", kind.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Identity holds across random benchmarks, seeds and budgets.
    #[test]
    fn identity_holds_for_random_runs(
        bench_idx in 0usize..28,
        seed in 0u64..1000,
        accesses in 20_000u64..80_000,
    ) {
        let bench = ltc_sim::trace::suite::benchmarks()[bench_idx].name;
        let r = cov(bench, PredictorKind::LtCords, accesses, seed);
        prop_assert_eq!(r.correct + r.incorrect + r.train(), r.base_l1_misses);
        prop_assert_eq!(r.pf_l1_misses, r.base_l1_misses - r.correct + r.early);
        prop_assert!(r.accesses <= accesses);
    }

    /// LT-cords metadata traffic scales with misses, not accesses: hit-heavy
    /// runs must not generate sequence traffic.
    #[test]
    fn metadata_traffic_tracks_misses(seed in 0u64..100) {
        let r = cov("crafty", PredictorKind::LtCords, 50_000, seed);
        // crafty's working set fits in L1: essentially no misses, so no
        // signatures recorded or streamed.
        prop_assert!(r.base_l1_misses < 2_000);
        prop_assert!(
            r.traffic.sequence_write_bytes <= r.base_l1_misses * 5,
            "writes {} exceed 5 bytes per miss",
            r.traffic.sequence_write_bytes
        );
    }
}
