//! Workspace-surface smoke test: every [`PredictorKind`] must run
//! end-to-end through `run_coverage`, so manifest or feature changes
//! cannot silently drop a predictor from the build.

use ltc_sim::core::LtCordsConfig;
use ltc_sim::experiment::{run_coverage, PredictorKind};

/// One instance of every `PredictorKind` variant.
///
/// The closure is an exhaustive match on purpose: adding a variant
/// breaks compilation here until this list learns about it.
fn all_kinds() -> Vec<PredictorKind> {
    #[allow(clippy::unused_unit)]
    let _witness = |k: PredictorKind| -> () {
        match k {
            PredictorKind::Baseline => (),
            PredictorKind::PerfectL1 => (),
            PredictorKind::LtCords => (),
            PredictorKind::LtCordsWith(_) => (),
            PredictorKind::DbcpUnlimited => (),
            PredictorKind::Dbcp2Mb => (),
            PredictorKind::DbcpBytes(_) => (),
            PredictorKind::SketchDbcp(_) => (),
            PredictorKind::Ghb => (),
            PredictorKind::Stride => (),
            PredictorKind::BigL2 => (),
        }
    };
    vec![
        PredictorKind::Baseline,
        PredictorKind::PerfectL1,
        PredictorKind::LtCords,
        PredictorKind::LtCordsWith(LtCordsConfig::paper()),
        PredictorKind::DbcpUnlimited,
        PredictorKind::Dbcp2Mb,
        PredictorKind::DbcpBytes(1 << 20),
        PredictorKind::SketchDbcp(256 << 10),
        PredictorKind::Ghb,
        PredictorKind::Stride,
        PredictorKind::BigL2,
    ]
}

#[test]
fn every_predictor_kind_runs_coverage_end_to_end() {
    for kind in all_kinds() {
        let r = run_coverage("gcc", kind, 40_000, 1);
        assert_eq!(r.predictor, kind.name(), "report must carry the kind's name");
        assert!(r.accesses > 0, "{}: simulation consumed no accesses", kind.name());
        assert!(r.base_l1_misses > 0, "{}: gcc at 40k accesses must miss", kind.name());
        assert_eq!(
            r.correct + r.incorrect + r.train(),
            r.base_l1_misses,
            "{}: Figure 8 coverage accounting identity broken",
            kind.name()
        );
        assert_eq!(
            r.pf_l1_misses,
            r.base_l1_misses - r.correct + r.early,
            "{}: miss-delta identity broken",
            kind.name()
        );
    }
}

#[test]
fn every_predictor_kind_builds_and_reports_storage() {
    for kind in all_kinds() {
        let p = kind.build();
        assert!(!kind.name().is_empty());
        // Null-prefetcher variants legitimately report 0 bytes; the rest
        // must claim real storage.
        match kind {
            PredictorKind::Baseline | PredictorKind::PerfectL1 | PredictorKind::BigL2 => {}
            _ => assert!(p.storage_bytes() > 0, "{}: no storage reported", kind.name()),
        }
    }
}
