//! `ltsim stream` engine contract: stream runs are ordinary `RunSpec`s,
//! so they dedupe and cache like any figure run, and the analysis's
//! resident summary memory is bounded by the configured budget no matter
//! how long the trace is.

use ltc_sim::engine::{EngineOptions, RunSpec, Scheduler};

/// The acceptance property of the sketch subsystem: doubling, or
/// octupling, the trace length leaves the summary's resident bytes
/// untouched — the budget is the bound, the trace length is irrelevant.
#[test]
fn resident_summary_memory_is_bounded_by_budget_independent_of_trace_length() {
    let budget = 96 << 10;
    let mut footprints = Vec::new();
    for accesses in [50_000u64, 400_000] {
        let spec = RunSpec::stream("swim", budget, accesses, 1);
        let mut sched = Scheduler::new();
        sched.request(spec.clone());
        let results = sched.execute(&EngineOptions::in_memory(2)).unwrap();
        let report = results.stream(&spec);
        assert_eq!(report.accesses, accesses);
        assert!(report.misses > 0, "swim must miss");
        assert!(
            report.memory_bytes <= budget,
            "resident {} exceeds budget {budget} at {accesses} accesses",
            report.memory_bytes
        );
        footprints.push(report.memory_bytes);
    }
    assert_eq!(footprints[0], footprints[1], "summary allocation is budget-, not trace-, sized");
}

/// Stream runs participate in the engine exactly like figure runs:
/// duplicates collapse, artifacts round-trip through the cache, and a
/// second pass simulates nothing.
#[test]
fn stream_specs_dedupe_and_cache_through_the_engine() {
    let dir = std::env::temp_dir().join(format!("ltc-stream-engine-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = RunSpec::stream("mcf", 64 << 10, 30_000, 1);
    let opts = EngineOptions::cached(2, &dir);

    let mut sched = Scheduler::new();
    sched.request(spec.clone());
    sched.request(spec.clone()); // duplicate request collapses
    let first = sched.execute(&opts).unwrap();
    assert_eq!(first.simulated(), 1, "duplicates must dedupe");

    let second = sched.execute(&opts).unwrap();
    assert_eq!(second.simulated(), 0, "second pass must be pure cache");
    assert_eq!(second.cache_hits(), 1);
    assert_eq!(
        first.stream(&spec),
        second.stream(&spec),
        "cached stream report must round-trip losslessly"
    );

    // Budget is part of the key: a different budget is a different run.
    let other = RunSpec::stream("mcf", 128 << 10, 30_000, 1);
    assert_ne!(spec.key(), other.key());
    std::fs::remove_dir_all(&dir).unwrap();
}
