//! `ltsim stream` engine contract: stream runs are ordinary `RunSpec`s,
//! so they dedupe and cache like any figure run, and the analysis's
//! resident summary memory is bounded by the configured budget no matter
//! how long the trace is.

use ltc_sim::engine::{EngineOptions, RunSpec, Scheduler};

/// The acceptance property of the sketch subsystem: doubling, or
/// octupling, the trace length leaves the summary's resident bytes
/// untouched — the budget is the bound, the trace length is irrelevant.
#[test]
fn resident_summary_memory_is_bounded_by_budget_independent_of_trace_length() {
    let budget = 96 << 10;
    let mut footprints = Vec::new();
    for accesses in [50_000u64, 400_000] {
        let spec = RunSpec::stream("swim", budget, accesses, 1);
        let mut sched = Scheduler::new();
        sched.request(spec.clone());
        let results = sched.execute(&EngineOptions::in_memory(2)).unwrap();
        let report = results.stream(&spec);
        assert_eq!(report.accesses, accesses);
        assert!(report.misses > 0, "swim must miss");
        assert!(
            report.memory_bytes <= budget,
            "resident {} exceeds budget {budget} at {accesses} accesses",
            report.memory_bytes
        );
        footprints.push(report.memory_bytes);
    }
    assert_eq!(footprints[0], footprints[1], "summary allocation is budget-, not trace-, sized");
}

/// Stream runs participate in the engine exactly like figure runs:
/// duplicates collapse, artifacts round-trip through the cache, and a
/// second pass simulates nothing.
#[test]
fn stream_specs_dedupe_and_cache_through_the_engine() {
    let dir = std::env::temp_dir().join(format!("ltc-stream-engine-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = RunSpec::stream("mcf", 64 << 10, 30_000, 1);
    let opts = EngineOptions::cached(2, &dir);

    let mut sched = Scheduler::new();
    sched.request(spec.clone());
    sched.request(spec.clone()); // duplicate request collapses
    let first = sched.execute(&opts).unwrap();
    assert_eq!(first.simulated(), 1, "duplicates must dedupe");

    let second = sched.execute(&opts).unwrap();
    assert_eq!(second.simulated(), 0, "second pass must be pure cache");
    assert_eq!(second.cache_hits(), 1);
    assert_eq!(
        first.stream(&spec),
        second.stream(&spec),
        "cached stream report must round-trip losslessly"
    );

    // Budget is part of the key: a different budget is a different run.
    let other = RunSpec::stream("mcf", 128 << 10, 30_000, 1);
    assert_ne!(spec.key(), other.key());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The segmented-streaming acceptance property: for every backend the
/// scheduler offers in process, `--segments N` produces a merged report
/// that matches the single-pass `--segments 1` report within the
/// documented sketch bounds, and no worker's resident summary exceeds
/// the byte budget. (The subprocess backend asserts the same through the
/// real binary in `crates/bench/tests/worker_protocol.rs`.)
#[test]
fn merged_segment_reports_match_single_pass_within_documented_bounds() {
    use ltc_sim::engine::BackendKind;

    let budget = 96 << 10;
    let accesses = 60_000u64;
    let single_spec = RunSpec::stream("swim", budget, accesses, 1);
    let segmented_spec = RunSpec::stream_segmented("swim", budget, 4, accesses, 1);
    let mut sched = Scheduler::new();
    sched.request(single_spec.clone());
    sched.request(segmented_spec.clone());

    for backend in [BackendKind::Threads, BackendKind::Sharded] {
        let results = sched.execute(&EngineOptions::in_memory(4).with_backend(backend)).unwrap();
        let single = results.stream(&single_spec);
        let merged = results.stream(&segmented_spec);

        // Same trace, same budget, same access count.
        assert_eq!(merged.accesses, single.accesses);
        assert_eq!(merged.budget_bytes, single.budget_bytes);
        // Per-worker resident memory respects the budget.
        assert!(
            merged.memory_bytes <= budget,
            "worker resident {} exceeds budget {budget}",
            merged.memory_bytes
        );
        // Misses only grow (cold hierarchies at segment boundaries), and
        // only a little.
        assert!(merged.misses >= single.misses);
        assert!(
            (merged.misses - single.misses) as f64 <= single.misses as f64 * 0.05,
            "cold-start drift too large: {} vs {}",
            merged.misses,
            single.misses
        );
        // Heavy-hitter estimates agree within the two reports' combined
        // ε·N bounds (plus the boundary drift already bounded above).
        // A line may drop out of the reported top-8 only if its estimate
        // never exceeded that tolerance in the first place — i.e. the
        // sketch bounds could not distinguish it from the field (the
        // suite's working sets are cache-exceeding sweeps, so most lines
        // sit exactly at the noise floor; the skewed-stream case where
        // the top set must match exactly is asserted in
        // `ltc_analysis::stream`'s unit tests).
        let tolerance = merged.error_bound + single.error_bound + (merged.misses - single.misses);
        for s in &single.heavy {
            match merged.heavy.iter().find(|m| m.line == s.line) {
                Some(m) => assert!(
                    m.estimate.abs_diff(s.estimate) <= tolerance,
                    "estimate for {:#x} drifted {} > {tolerance}",
                    s.line,
                    m.estimate.abs_diff(s.estimate)
                ),
                None => assert!(
                    s.estimate <= tolerance,
                    "genuinely heavy line {:#x} (est {} > {tolerance}) lost in the merge",
                    s.line,
                    s.estimate
                ),
            }
        }
    }
}
