//! The paper's headline result on a pointer-chasing workload: LT-cords
//! parallelizes dependent misses that delta correlation cannot touch.
//!
//! Compares baseline, perfect-L1, LT-cords, GHB PC/DC, DBCP (2 MB) and a
//! 4 MB L2 on an mcf-style workload under the cycle-approximate timing
//! model (paper Table 3).
//!
//! ```text
//! cargo run --release --example pointer_chase_speedup [benchmark] [accesses]
//! ```

use ltc_sim::experiment::{run_timing, PredictorKind};
use ltc_sim::report::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("mcf");
    let accesses: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);

    println!("Timing comparison on `{bench}` ({accesses} accesses)\n");
    let base = run_timing(bench, PredictorKind::Baseline, accesses, 7);

    let mut table = Table::new(vec!["configuration", "IPC", "speedup", "L2 misses"]);
    table.row(vec![
        "baseline".into(),
        format!("{:.3}", base.ipc()),
        "--".into(),
        base.l2_misses.to_string(),
    ]);
    for kind in [
        PredictorKind::PerfectL1,
        PredictorKind::LtCords,
        PredictorKind::Ghb,
        PredictorKind::Dbcp2Mb,
        PredictorKind::BigL2,
    ] {
        let r = run_timing(bench, kind, accesses, 7);
        table.row(vec![
            kind.name().into(),
            format!("{:.3}", r.ipc()),
            format!("{:+.0}%", r.speedup_pct_over(&base)),
            r.l2_misses.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("The paper's Table 3 shape: perfect L1 bounds everything; LT-cords");
    println!("captures most of that bound on pointer codes; GHB only helps when");
    println!("the layout is regular; DBCP's table overflows on large footprints.");
}
