//! Multi-programmed execution (paper Section 5.5, Figure 11).
//!
//! Two programs share one LT-cords instance across context switches; the
//! paper shows coverage is preserved as long as predictor state persists
//! and off-chip sequence storage has room for both programs' sequences.
//!
//! ```text
//! cargo run --release --example multiprogrammed [benchA] [benchB] [accesses]
//! ```

use ltc_sim::analysis::{run_coverage, CoverageConfig};
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::trace::{suite, MultiProgram};

/// The paper alternates 60 M-instruction quanta for integer codes and 120 M
/// for floating point (4 GHz, assumed IPC 1.5/3.0); we scale both down by
/// 100x to keep the example fast while preserving many context switches.
fn quantum(entry: &ltc_sim::trace::SuiteEntry) -> u64 {
    if entry.is_fp() {
        1_200_000
    } else {
        600_000
    }
}

fn coverage_of(bench: &str, accesses: u64, with: Option<&str>) -> f64 {
    let entry = suite::by_name(bench).expect("benchmark exists");
    let mut lt = LtCords::new(LtCordsConfig::paper());
    match with {
        None => {
            let mut src = entry.build(3);
            run_coverage(&mut src, &mut lt, CoverageConfig::paper(accesses)).coverage()
        }
        Some(other) => {
            let other_entry = suite::by_name(other).expect("benchmark exists");
            // Shift the second program into a disjoint physical range, as
            // the paper does.
            let programs = vec![
                (entry.build(3), quantum(&entry), 0u64),
                (other_entry.build(4), quantum(&other_entry), 1u64 << 40),
            ];
            let mut multi = MultiProgram::new(programs);
            // Run enough combined accesses that the focus program still sees
            // roughly `accesses` of its own references.
            let report = run_coverage(&mut multi, &mut lt, CoverageConfig::paper(accesses * 2));
            // Note: this measures combined coverage over both programs; the
            // integration tests also split it per program.
            report.coverage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = args.first().map(String::as_str).unwrap_or("mcf");
    let b = args.get(1).map(String::as_str).unwrap_or("swim");
    let accesses: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4_000_000);

    println!("LT-cords coverage, standalone vs context-switched (Section 5.5)\n");
    let standalone = coverage_of(a, accesses, None);
    println!("{a} standalone : {:.1}% coverage", standalone * 100.0);
    let shared = coverage_of(a, accesses, Some(b));
    println!("{a} + {b}      : {:.1}% combined coverage", shared * 100.0);
    println!();
    println!("Predictor state persists across context switches (the paper's");
    println!("requirement); with ample sequence storage, sharing costs little.");
}
