//! Building a custom workload from the pattern primitives and analysing it.
//!
//! Composes a pointer chase with an array sweep (a simplified graph-plus-
//! buffers application), then reports the paper's diagnostic metrics for
//! it: temporal correlation (Figure 6), last-touch/miss order disparity
//! (Figure 7), dead times (Figure 2) and LT-cords coverage (Figure 8).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ltc_sim::analysis::{
    run_coverage, CorrelationAnalysis, CoverageConfig, DeadTimeTracker, LastTouchOrderAnalysis,
};
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::trace::gen::{ChaseConfig, ChaseGen, GapModel, PhaseMix, SweepConfig, SweepGen};
use ltc_sim::trace::BoxedSource;

fn build() -> PhaseMix {
    // An 8 MB static linked structure, chased in a fixed order...
    let graph: BoxedSource = Box::new(ChaseGen::new(ChaseConfig {
        nodes: 1 << 17,
        node_bytes: 64,
        fields_per_node: 1,
        gap: GapModel::jittered(3, 1),
        seed: 11,
        ..ChaseConfig::default()
    }));
    // ...interleaved with sweeps over two 2 MB buffers.
    let buffers: BoxedSource = Box::new(SweepGen::new(SweepConfig {
        base: 0x9000_0000,
        arrays: vec![2 << 20, 2 << 20],
        strides: vec![16],
        store_every: 8,
        gap: GapModel::jittered(3, 1),
        seed: 12,
        ..SweepConfig::default()
    }));
    PhaseMix::new(vec![(graph, 50_000), (buffers, 30_000)])
}

fn main() {
    let accesses = 3_000_000;

    println!("Temporal correlation (Figure 6 left):");
    let corr = CorrelationAnalysis::run(&mut build(), accesses);
    println!("  misses                 : {}", corr.misses);
    println!("  perfectly correlated   : {:.1}%", corr.perfect_fraction() * 100.0);
    println!("  correlated at |d|<=16  : {:.1}%", corr.cdf_at(16) * 100.0);
    println!("  correlated at |d|<=256 : {:.1}%", corr.cdf_at(256) * 100.0);

    println!("\nLast-touch vs miss order (Figure 7):");
    let order = LastTouchOrderAnalysis::run(&mut build(), accesses);
    println!("  perfectly ordered      : {:.1}%", order.perfect_fraction() * 100.0);
    println!("  within +-16            : {:.1}%", order.cdf_at(16) * 100.0);
    println!("  within +-1K            : {:.1}%", order.cdf_at(1024) * 100.0);

    println!("\nBlock dead times (Figure 2), in instructions:");
    let dead = DeadTimeTracker::run(&mut build(), accesses);
    println!("  median                 : {}", dead.dead_times.quantile(0.5));
    println!("  longer than 200 instrs : {:.1}%", dead.fraction_longer_than(200) * 100.0);

    println!("\nLT-cords coverage (Figure 8 style):");
    let mut lt = LtCords::new(LtCordsConfig::paper());
    let report = run_coverage(&mut build(), &mut lt, CoverageConfig::paper(accesses));
    println!("  correct   : {:.1}%", report.correct_pct() * 100.0);
    println!("  incorrect : {:.1}%", report.incorrect_pct() * 100.0);
    println!("  train     : {:.1}%", report.train_pct() * 100.0);
    println!("  early     : {:.1}%", report.early_pct() * 100.0);
}
