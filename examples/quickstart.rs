//! Quickstart: run LT-cords on a benchmark and print its coverage.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [accesses]
//! ```

use ltc_sim::analysis::{run_coverage, CoverageConfig};
use ltc_sim::core::{LtCords, LtCordsConfig};
use ltc_sim::predictors::Prefetcher;
use ltc_sim::trace::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("mcf");
    let accesses: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);

    let entry = suite::by_name(bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}; try `ltsim list`");
        std::process::exit(1);
    });
    println!("benchmark : {} ({})", entry.name, entry.description);

    // 1. Instantiate the workload (deterministic for a given seed).
    let mut source = entry.build(42);

    // 2. Instantiate LT-cords with the paper's Section 5.6 configuration:
    //    a 32K-entry signature cache, 4K frames x 8K signatures off chip.
    let mut ltcords = LtCords::new(LtCordsConfig::paper());
    println!(
        "predictor : lt-cords, {} KB on chip, {} MB off chip",
        ltcords.storage_bytes() / 1024,
        ltcords.config().offchip_bytes() >> 20,
    );

    // 3. Run the trace-driven coverage simulation: the predictor-augmented
    //    hierarchy runs in lockstep with a shadow baseline, classifying
    //    every baseline miss (paper Figure 8).
    let report = run_coverage(&mut source, &mut ltcords, CoverageConfig::paper(accesses));

    println!("accesses  : {}", report.accesses);
    println!("L1D miss  : {:.1}% of accesses", report.base_l1_miss_rate() * 100.0);
    println!("coverage  : {:.1}% of misses eliminated", report.coverage() * 100.0);
    println!("  correct  : {:.1}%", report.correct_pct() * 100.0);
    println!("  incorrect: {:.1}%", report.incorrect_pct() * 100.0);
    println!("  train    : {:.1}%", report.train_pct() * 100.0);
    println!("  early    : {:.1}% (above 100%)", report.early_pct() * 100.0);
    let m = ltcords.metrics();
    println!(
        "streaming : {} head activations, {} signatures streamed, {} recorded",
        m.head_activations, m.signatures_streamed, m.signatures_recorded
    );
}
