//! Workspace umbrella for the LT-cords reproduction.
//!
//! This crate exists to anchor the workspace-level integration tests
//! (`tests/`) and examples (`examples/`); the actual API lives in the
//! member crates and is re-exported through the [`ltc_sim`] facade.
//! See the repository README for the crate map.

pub use ltc_sim as sim;
